"""Combinators for composing party-program generators.

A *sub-protocol* is a generator with the same shape as a party program
(yield drafts, receive an :class:`Inbox`, return a result).  Protocols are
composed in two ways:

* **sequentially** — plain ``yield from sub(...)`` inside a program;
* **in parallel** — :func:`run_in_lockstep`, which advances several
  sub-generators one round at a time, merging their outboxes and fanning
  the round's inbox out to each of them.

Sub-protocols must namespace their message tags (every helper in
:mod:`repro.broadcast` takes an ``instance`` label for this) so parallel
instances do not read each other's traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Hashable, Iterable, List

from ..errors import ProtocolError
from ..obs import runtime as _obs
from .message import Draft, Inbox

SubProtocol = Generator[Iterable[Draft], Inbox, Any]


def run_in_lockstep(
    subprotocols: Dict[Hashable, SubProtocol],
) -> Generator[Iterable[Draft], Inbox, Dict[Hashable, Any]]:
    """Run several sub-protocols in parallel rounds; returns {key: result}.

    All sub-protocols advance by exactly one network round per ``yield`` of
    the combinator.  A sub-protocol that finishes early simply stops
    contributing messages while the rest keep running; the combinator
    returns once every sub-protocol has finished.

    This is itself a sub-protocol, so lockstep groups nest.
    """
    active: Dict[Hashable, SubProtocol] = dict(subprotocols)
    results: Dict[Hashable, Any] = {}
    if _obs.metrics is not None:
        _obs.metrics.inc("net.lockstep.groups")
        _obs.metrics.observe("net.lockstep.width", len(active))

    # Prime every sub-generator, collecting the first round's drafts.
    outbox: List[Draft] = []
    for key in list(active):
        try:
            drafts = next(active[key])
        except StopIteration as stop:
            results[key] = stop.value
            del active[key]
            continue
        outbox.extend(_as_drafts(key, drafts))

    while active:
        inbox = yield outbox
        outbox = []
        if _obs.metrics is not None:
            _obs.metrics.inc("net.lockstep.rounds")
        for key in list(active):
            try:
                drafts = active[key].send(inbox)
            except StopIteration as stop:
                results[key] = stop.value
                del active[key]
                continue
            outbox.extend(_as_drafts(key, drafts))

    # Flush any drafts produced in the same round the last sub-protocol
    # finished: they still need one final yield to reach the network.
    if outbox:
        yield outbox
    return results


def _as_drafts(key: Hashable, drafts: Any) -> List[Draft]:
    if drafts is None:
        return []
    items = list(drafts)
    for draft in items:
        if not isinstance(draft, Draft):
            raise ProtocolError(
                f"sub-protocol {key!r} yielded {type(draft).__name__}; expected Draft"
            )
    return items


def idle_rounds(count: int) -> Generator[Iterable[Draft], Inbox, None]:
    """A sub-protocol that stays silent for ``count`` rounds (padding)."""
    for _ in range(count):
        yield []
    return None
