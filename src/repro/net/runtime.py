"""The pluggable network-runtime seam (ROADMAP item 1).

Every protocol execution is driven by a *runtime*: a scheduler class plus
a message-timing policy.  Two runtimes exist:

* ``"lockstep"`` — the original synchronous round engine of
  :mod:`repro.net.scheduler`, unchanged and bit-identical to the seed
  implementation.  One round of latency on every channel, rushing
  delivery to corrupted parties.
* ``"event"`` — the deterministic discrete-event engine of
  :mod:`repro.net.event`.  Message latencies are drawn per channel edge
  from a seeded :class:`EventClock` stream according to a
  :class:`DelayModel`; deliveries may be reordered, dropped by an
  :class:`OmissionPolicy`, and batched by arrival time.  No wall time is
  ever read, so a run is an exact function of ``(seed, delay model,
  omission policy)`` and replays are bit-identical.

The paper's rushing adversary is *one point* in this delay-model space:
:class:`RushDelay` gives honest→corrupted edges zero latency (the
adversary hears the current batch's honest traffic before corrupted
parties speak) and every other edge the base model's latency.  With
``RushDelay(ConstantDelay(1))`` — the event runtime's default — the
event engine degenerates to exactly the lockstep semantics, which is the
equivalence the property suite in ``tests/test_net_runtime_properties.py``
pins down.

Selection: :func:`run_protocol` takes ``runtime=``/``delay_model=``/
``omission=`` keywords; with no explicit choice the ``REPRO_RUNTIME``,
``REPRO_DELAY_MODEL`` and ``REPRO_OMISSION`` environment variables are
consulted (this is how the CI runtime matrix re-runs the whole tier-1
suite under both engines), defaulting to lockstep.
"""

from __future__ import annotations

import heapq
import os
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import InvalidParameterError

#: Environment variables consulted when no explicit runtime is passed.
ENV_RUNTIME = "REPRO_RUNTIME"
ENV_DELAY_MODEL = "REPRO_DELAY_MODEL"
ENV_OMISSION = "REPRO_OMISSION"

#: The runtime registry: kind -> (module, scheduler class name).
RUNTIMES: Dict[str, Tuple[str, str]] = {
    "lockstep": ("repro.net.scheduler", "Scheduler"),
    "event": ("repro.net.event", "EventScheduler"),
}

#: Smallest latency a non-rushed edge may have: delivery strictly after
#: the sending batch, so a pathological model cannot stall the clock.
MIN_EDGE_DELAY = 1e-9


def _mix_edge_seed(seed: int, sender: int, recipient: int) -> int:
    """A stable 64-bit stream seed for one directed channel edge."""
    value = (seed or 0) & 0xFFFFFFFFFFFFFFFF
    value = (value * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & 0xFFFFFFFFFFFFFFFF
    value ^= (sender * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= (recipient * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    return value


# -- delay models -------------------------------------------------------------------


class DelayModel:
    """Per-edge message latency policy for the event runtime.

    ``edge_delay`` draws one latency (in abstract ticks — never wall
    time) from the edge's seeded stream; ``rushes`` marks edges that
    deliver *instantly within the sending batch*, which is how the
    paper's rushing advantage is expressed as a timing policy.
    """

    name = "abstract"

    def edge_delay(self, sender: int, recipient: int, rng: random.Random) -> float:
        raise NotImplementedError

    def rushes(self, sender: int, recipient: int, corrupted: frozenset) -> bool:
        return False

    def spec(self) -> Dict[str, Any]:
        return {"model": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"


class ConstantDelay(DelayModel):
    """Every edge delivers after exactly ``ticks`` (default: one round)."""

    name = "constant"

    def __init__(self, ticks: float = 1.0) -> None:
        if ticks <= 0:
            raise InvalidParameterError("constant delay must be positive")
        self.ticks = float(ticks)

    def edge_delay(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self.ticks

    def spec(self) -> Dict[str, Any]:
        return {"model": self.name, "ticks": self.ticks}


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high]`` per message edge."""

    name = "uniform"

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise InvalidParameterError(
                f"uniform delay needs 0 <= low <= high, got [{low}, {high}]"
            )
        self.low = float(low)
        self.high = float(high)

    def edge_delay(self, sender: int, recipient: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def spec(self) -> Dict[str, Any]:
        return {"model": self.name, "low": self.low, "high": self.high}


class ExponentialDelay(DelayModel):
    """Memoryless latency with the given ``mean`` (partial synchrony's tail)."""

    name = "exponential"

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise InvalidParameterError("exponential delay needs a positive mean")
        self.mean = float(mean)

    def edge_delay(self, sender: int, recipient: int, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def spec(self) -> Dict[str, Any]:
        return {"model": self.name, "mean": self.mean}


class RushDelay(DelayModel):
    """The rushing adversary as a delay model.

    Honest→corrupted edges deliver instantly (latency zero, *within* the
    sending batch, before the adversary chooses corrupted messages);
    every other edge — honest→honest, corrupted→anyone — pays the base
    model's latency, i.e. the adversary's own edges deliver last.  With a
    :class:`ConstantDelay` base this reproduces the lockstep scheduler's
    Section 3.1 semantics exactly.
    """

    name = "rush"

    def __init__(self, base: Optional[DelayModel] = None) -> None:
        self.base = base if base is not None else ConstantDelay(1.0)

    def edge_delay(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self.base.edge_delay(sender, recipient, rng)

    def rushes(self, sender: int, recipient: int, corrupted: Any) -> bool:
        return recipient in corrupted and sender not in corrupted

    def spec(self) -> Dict[str, Any]:
        return {"model": self.name, "base": self.base.spec()}


#: Delay-model constructors by name, for CLI / environment specs.
DELAY_MODELS = {
    "constant": ConstantDelay,
    "uniform": UniformDelay,
    "exponential": ExponentialDelay,
    "rush": RushDelay,
}


def delay_model_from_spec(spec: Any) -> Optional[DelayModel]:
    """Parse ``"uniform:0.5,1.5"`` / ``"rush"`` / ``None`` / a DelayModel.

    ``rush`` wraps the remaining spec as its base model, so
    ``"rush:uniform:0.5,1.5"`` is a rushing adversary over jittery links.
    """
    if spec is None or isinstance(spec, DelayModel):
        return spec
    text = str(spec).strip()
    if not text:
        return None
    head, _, rest = text.partition(":")
    head = head.lower()
    if head not in DELAY_MODELS:
        raise InvalidParameterError(
            f"unknown delay model {head!r}; known: {sorted(DELAY_MODELS)}"
        )
    if head == "rush":
        return RushDelay(delay_model_from_spec(rest) if rest else None)
    if not rest:
        return DELAY_MODELS[head]()
    try:
        args = [float(part) for part in rest.split(",") if part.strip()]
    except ValueError as exc:
        raise InvalidParameterError(f"bad delay-model args {rest!r}: {exc}") from None
    return DELAY_MODELS[head](*args)


# -- omission policies --------------------------------------------------------------


class OmissionPolicy:
    """Which scheduled deliveries are silently lost in the event runtime."""

    name = "abstract"

    def omits(self, sender: int, recipient: int, message: Any, rng: random.Random) -> bool:
        return False

    def spec(self) -> Dict[str, Any]:
        return {"policy": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"


class NoOmission(OmissionPolicy):
    name = "none"


class DropAll(OmissionPolicy):
    """Omit every message *sent by* the given parties (a send-omission fault)."""

    name = "drop-all"

    def __init__(self, parties: Any) -> None:
        if isinstance(parties, int):
            parties = (parties,)
        self.parties = frozenset(int(p) for p in parties)

    def omits(self, sender: int, recipient: int, message: Any, rng: random.Random) -> bool:
        return sender in self.parties

    def spec(self) -> Dict[str, Any]:
        return {"policy": self.name, "parties": sorted(self.parties)}


class DropEdges(OmissionPolicy):
    """Omit traffic on specific directed ``(sender, recipient)`` edges."""

    name = "drop-edges"

    def __init__(self, edges: Any) -> None:
        self.edges = frozenset((int(s), int(r)) for s, r in edges)

    def omits(self, sender: int, recipient: int, message: Any, rng: random.Random) -> bool:
        return (sender, recipient) in self.edges

    def spec(self) -> Dict[str, Any]:
        return {"policy": self.name, "edges": sorted(self.edges)}


class RandomDrop(OmissionPolicy):
    """Omit each delivery independently with the given probability.

    Draws come from the delivery edge's seeded clock stream, so the drop
    pattern replays exactly with the run.
    """

    name = "random"

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise InvalidParameterError("drop probability must be in [0, 1]")
        self.probability = float(probability)

    def omits(self, sender: int, recipient: int, message: Any, rng: random.Random) -> bool:
        return rng.random() < self.probability

    def spec(self) -> Dict[str, Any]:
        return {"policy": self.name, "probability": self.probability}


def omission_from_spec(spec: Any) -> Optional[OmissionPolicy]:
    """Parse ``"drop-all:1"`` / ``"drop-edges:1-2,3-4"`` / ``"random:0.1"``."""
    if spec is None or isinstance(spec, OmissionPolicy):
        return spec
    text = str(spec).strip()
    if not text or text.lower() == "none":
        return None
    head, _, rest = text.partition(":")
    head = head.lower()
    if head == "drop-all":
        return DropAll(int(part) for part in rest.split(",") if part.strip())
    if head == "drop-edges":
        edges = []
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            s, _, r = part.partition("-")
            edges.append((int(s), int(r)))
        return DropEdges(edges)
    if head == "random":
        return RandomDrop(float(rest))
    raise InvalidParameterError(
        f"unknown omission policy {head!r}; known: drop-all, drop-edges, random"
    )


# -- the deterministic discrete-event clock -----------------------------------------


class EventClock:
    """A discrete-event clock with seeded per-edge randomness and no wall time.

    Events are ordered by ``(time, insertion sequence)`` — the sequence
    number makes simultaneous deliveries pop in schedule order, so the
    whole event history is a pure function of the clock seed and the
    schedule calls.  Each directed channel edge ``(sender, recipient)``
    owns an independent RNG stream derived from the clock seed, so one
    edge's delay draws can never perturb another's.
    """

    __slots__ = ("seed", "now", "_heap", "_sequence", "_edge_rngs")

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = int(seed or 0)
        self.now = 0.0
        self._heap: List[Tuple[float, int, Any]] = []
        self._sequence = 0
        self._edge_rngs: Dict[Tuple[int, int], random.Random] = {}

    def edge_rng(self, sender: int, recipient: int) -> random.Random:
        """The RNG stream owned by the directed edge ``sender -> recipient``."""
        key = (sender, recipient)
        rng = self._edge_rngs.get(key)
        if rng is None:
            rng = random.Random(_mix_edge_seed(self.seed, sender, recipient))
            self._edge_rngs[key] = rng
        return rng

    def schedule(self, delay: float, item: Any) -> float:
        """Enqueue ``item`` for ``now + delay``; returns the arrival time."""
        arrival = self.now + max(float(delay), MIN_EDGE_DELAY)
        heapq.heappush(self._heap, (arrival, self._sequence, item))
        self._sequence += 1
        return arrival

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def tick(self, ticks: float = 1.0) -> float:
        """Advance time with no deliveries (a silent batch)."""
        self.now += ticks
        return self.now

    def advance(self) -> Optional[Tuple[float, List[Any]]]:
        """Pop every event at the next occupied instant, advancing ``now``.

        Returns ``(time, items)`` in schedule order, or ``None`` when the
        queue is empty.
        """
        if not self._heap:
            return None
        time, _, item = heapq.heappop(self._heap)
        batch = [item]
        while self._heap and self._heap[0][0] == time:
            batch.append(heapq.heappop(self._heap)[2])
        self.now = time
        return time, batch


# -- runtime selection --------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeConfig:
    """One fully resolved runtime choice, shippable to pool workers."""

    kind: str = "lockstep"
    delay_model: Optional[DelayModel] = None
    omission: Optional[OmissionPolicy] = None
    max_events: Optional[int] = None

    def resolved_delay_model(self) -> DelayModel:
        """The event runtime's default timing: the paper's rushing round."""
        return self.delay_model if self.delay_model is not None else RushDelay()

    def spec(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"runtime": self.kind}
        if self.delay_model is not None:
            out["delay_model"] = self.delay_model.spec()
        if self.omission is not None:
            out["omission"] = self.omission.spec()
        if self.max_events is not None:
            out["max_events"] = self.max_events
        return out


def capture_runtime_env() -> Dict[str, str]:
    """Snapshot the runtime-selection environment variables.

    The parallel engine captures this at ``map()`` submission and ships
    it with every shard task, so workers resolve the *coordinator's*
    runtime even under the ``spawn`` start method (where a worker's
    environment is whatever the OS hands a fresh interpreter).
    """
    return {
        key: os.environ[key]
        for key in (ENV_RUNTIME, ENV_DELAY_MODEL, ENV_OMISSION)
        if key in os.environ
    }


def apply_runtime_env(env: Dict[str, str]) -> None:
    """Install a captured runtime environment in a worker process."""
    for key in (ENV_RUNTIME, ENV_DELAY_MODEL, ENV_OMISSION):
        if key in env:
            os.environ[key] = env[key]
        else:
            os.environ.pop(key, None)


def resolve_runtime(
    runtime: Any = None,
    delay_model: Any = None,
    omission: Any = None,
    max_events: Optional[int] = None,
) -> RuntimeConfig:
    """Normalize the caller's runtime choice into a :class:`RuntimeConfig`.

    ``runtime`` may be a :class:`RuntimeConfig` (returned as-is), a kind
    string, or ``None`` — in which case ``REPRO_RUNTIME`` (and, for the
    event runtime, ``REPRO_DELAY_MODEL`` / ``REPRO_OMISSION``) decide,
    defaulting to lockstep.  Explicit ``delay_model`` / ``omission``
    arguments require the event runtime: the lockstep engine's timing is
    fixed by the paper's model, and silently ignoring a requested delay
    distribution would misreport what was simulated.
    """
    if isinstance(runtime, RuntimeConfig):
        return runtime
    from_env = runtime is None
    kind = (runtime if runtime is not None else os.environ.get(ENV_RUNTIME, "lockstep"))
    kind = str(kind).strip().lower() or "lockstep"
    if kind not in RUNTIMES:
        raise InvalidParameterError(
            f"unknown runtime {kind!r}; known: {sorted(RUNTIMES)}"
        )
    model = delay_model_from_spec(delay_model)
    policy = omission_from_spec(omission)
    if kind == "event" and from_env:
        if model is None:
            model = delay_model_from_spec(os.environ.get(ENV_DELAY_MODEL))
        if policy is None:
            policy = omission_from_spec(os.environ.get(ENV_OMISSION))
    if kind != "event" and (model is not None or policy is not None or max_events is not None):
        raise InvalidParameterError(
            "delay_model/omission/max_events require runtime='event'; "
            "the lockstep runtime's timing is fixed by the paper's model"
        )
    return RuntimeConfig(kind=kind, delay_model=model, omission=policy, max_events=max_events)


def scheduler_class(kind: str) -> Any:
    """The scheduler class registered for one runtime kind (lazy import)."""
    try:
        module_name, class_name = RUNTIMES[kind]
    except KeyError:
        raise InvalidParameterError(
            f"unknown runtime {kind!r}; known: {sorted(RUNTIMES)}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), class_name)
