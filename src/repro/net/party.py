"""Party programs and their runtime context.

A *party program* is a Python generator function::

    def program(ctx: PartyContext):
        inbox = yield [broadcast(my_commitment, tag="commit")]
        ...
        return my_output

Each ``yield`` sends the listed draft messages and suspends until the next
round's inbox arrives.  Returning ends the party's participation; its return
value becomes the party's protocol output.  This style keeps multi-phase
protocol code linear and readable instead of a hand-rolled state machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, List, Optional

from ..errors import ProtocolError
from .message import Draft, Inbox, Message

PartyProgram = Generator[Iterable[Draft], Inbox, Any]


@dataclass
class PartyContext:
    """Per-party runtime information handed to a program.

    Attributes:
        party_id: this party's 1-based index.
        n: total number of parties.
        rng: this party's private randomness source.
        config: protocol-level public setup (CRS, PKI, parameters, ...).
        session: a session identifier bound into signatures/proofs.
    """

    party_id: int
    n: int
    rng: random.Random
    config: Any = None
    session: str = ""

    def others(self) -> List[int]:
        return [i for i in range(1, self.n + 1) if i != self.party_id]

    def all_parties(self) -> List[int]:
        return list(range(1, self.n + 1))


@dataclass
class PartyState:
    """Bookkeeping for one party inside the scheduler."""

    party_id: int
    generator: Optional[PartyProgram]
    finished: bool = False
    output: Any = None
    pending_inbox: List[Message] = field(default_factory=list)

    def start(self) -> List[Draft]:
        """Prime the generator, collecting its first outbox."""
        if self.generator is None:
            self.finished = True
            return []
        try:
            drafts = next(self.generator)
        except StopIteration as stop:
            self.finished = True
            self.output = stop.value
            return []
        return _validate_drafts(self.party_id, drafts)

    def resume(self, inbox: Inbox) -> List[Draft]:
        """Deliver an inbox and collect the next outbox."""
        if self.finished or self.generator is None:
            return []
        try:
            drafts = self.generator.send(inbox)
        except StopIteration as stop:
            self.finished = True
            self.output = stop.value
            return []
        return _validate_drafts(self.party_id, drafts)


def _validate_drafts(party_id: int, drafts: Any) -> List[Draft]:
    if drafts is None:
        return []
    result = []
    for draft in drafts:
        if not isinstance(draft, Draft):
            raise ProtocolError(
                f"party {party_id} yielded {type(draft).__name__}; "
                "programs must yield Draft messages (use send()/broadcast())"
            )
        result.append(draft)
    return result


def make_party_rngs(master: random.Random, n: int) -> Dict[int, random.Random]:
    """Derive an independent RNG per party from a master RNG."""
    return {i: random.Random(master.getrandbits(64)) for i in range(1, n + 1)}
