"""Message types for the partially synchronous network of Section 3.1.

Two channel kinds exist, mirroring the paper's model:

* point-to-point messages between each pair of parties, and
* a broadcast channel (the model the simultaneous-broadcast protocols are
  built *on top of* — "a network which provides a broadcast channel").

Both are delivered with one round of latency to honest parties.  The
rushing adversary additionally sees the current round's honest traffic to
corrupted parties (and all honest broadcasts) before corrupted parties
speak; that policy lives in :mod:`repro.net.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

BROADCAST = -1
"""Sentinel recipient meaning "deliver to every party"."""


@dataclass(frozen=True, slots=True)
class Message:
    """A single message in flight.

    Attributes:
        sender: 1-based index of the sending party.
        recipient: 1-based index of the receiving party, or :data:`BROADCAST`.
        payload: any canonically encodable value.
        tag: protocol-defined label used to route messages within a protocol
            (e.g. ``"share"``, ``"commit"``, ``"open"``).
    """

    sender: int
    recipient: int
    payload: Any
    tag: str = ""

    @property
    def is_broadcast(self) -> bool:
        return self.recipient == BROADCAST

    def addressed_to(self, party: int) -> bool:
        return self.is_broadcast or self.recipient == party


def send(recipient: int, payload: Any, tag: str = "") -> "Draft":
    """Create a point-to-point draft message (sender filled in by the runtime)."""
    return Draft(recipient=recipient, payload=payload, tag=tag)


def broadcast(payload: Any, tag: str = "") -> "Draft":
    """Create a broadcast-channel draft message."""
    return Draft(recipient=BROADCAST, payload=payload, tag=tag)


@dataclass(frozen=True, slots=True)
class Draft:
    """A message as produced by a party program, before the sender is stamped."""

    recipient: int
    payload: Any
    tag: str = ""

    def stamped(self, sender: int) -> Message:
        return Message(sender=sender, recipient=self.recipient, payload=self.payload, tag=self.tag)


class Inbox:
    """The messages delivered to one party at the start of a round."""

    __slots__ = ("_messages",)

    def __init__(self, messages: Optional[List[Message]] = None) -> None:
        self._messages = list(messages or ())

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def all(self) -> Tuple[Message, ...]:
        return tuple(self._messages)

    def from_sender(self, sender: int, tag: Optional[str] = None) -> List[Message]:
        return [
            m
            for m in self._messages
            if m.sender == sender and (tag is None or m.tag == tag)
        ]

    def first_from(self, sender: int, tag: Optional[str] = None) -> Optional[Message]:
        matches = self.from_sender(sender, tag)
        return matches[0] if matches else None

    def with_tag(self, tag: str) -> List[Message]:
        return [m for m in self._messages if m.tag == tag]

    def broadcasts(self, tag: Optional[str] = None) -> List[Message]:
        return [
            m
            for m in self._messages
            if m.is_broadcast and (tag is None or m.tag == tag)
        ]

    def payload_by_sender(self, tag: Optional[str] = None) -> dict:
        """Map sender -> payload, keeping the first message per sender."""
        result = {}
        for message in self._messages:
            if tag is not None and message.tag != tag:
                continue
            result.setdefault(message.sender, message.payload)
        return result

    def __repr__(self) -> str:
        return f"Inbox({self._messages!r})"


@dataclass(slots=True)
class RoundRecord:
    """Everything that was sent in one round (for transcripts)."""

    round: int
    messages: List[Message] = field(default_factory=list)
