"""The deterministic discrete-event runtime (``runtime="event"``).

Where the lockstep :class:`~repro.net.scheduler.Scheduler` advances all
parties one synchronous round at a time, this engine advances a seeded
:class:`~repro.net.runtime.EventClock`: every sent message becomes a
delivery event on its ``(sender, recipient)`` edge at ``now + delay``,
with the delay drawn from the edge's private RNG stream according to the
configured :class:`~repro.net.runtime.DelayModel`.  Deliveries landing at
the same instant form one *event batch*; each batch every unfinished
honest party is resumed with whatever arrived for it (possibly nothing),
so synchronous protocols written against the round API keep progressing
while asynchronous ones (Bracha RBC) react to messages as they land.

Determinism: no wall time is ever read, delay draws come from per-edge
streams derived from the execution seed, and simultaneous events pop in
schedule order — so the full transcript is a pure function of
``(seed, delay model, omission policy)`` and replays are bit-identical.

The adversary model carries over: the adversary acts once per batch, and
the delay model decides its information.  Under
:class:`~repro.net.runtime.RushDelay` honest→corrupted edges deliver
inside the sending batch (the paper's rushing advantage); under any other
model the adversary only sees traffic when the clock delivers it.  With
the default ``RushDelay(ConstantDelay(1))`` this engine reproduces the
lockstep scheduler's executions exactly — transcripts, outputs, and
metrics — which ``tests/test_net_runtime_properties.py`` pins down.

Progress guards generalize the lockstep round guards to event counts:

* ``timeout_rounds`` bounds the number of batches (graceful finalize);
* ``max_events`` bounds total deliveries (:class:`NetworkError` + flight
  dump), catching delay models that generate unbounded traffic;
* a drained queue with no new traffic can never make progress, so the
  run finalizes (or raises, when no timeout output is configured)
  immediately instead of spinning silent batches until ``max_rounds``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import NetworkError, ProtocolError
from ..obs import flightrec as _flightrec
from ..obs import runtime as _obs
from .message import Inbox, Message, RoundRecord
from .runtime import DelayModel, EventClock, OmissionPolicy, RushDelay
from .scheduler import Scheduler
from .transcript import Execution

#: Hard ceiling on processed delivery events (the event-count analogue of
#: ``max_rounds``); generous — a smoke-scale run is a few thousand events.
DEFAULT_MAX_EVENTS = 1_000_000

#: Consecutive all-silent batches on an empty queue tolerated before the
#: run is declared stuck.  Small round-counting idles (padding rounds in
#: lockstep compositions) survive; an unbounded wait cannot.
IDLE_BATCH_LIMIT = 8


class EventScheduler(Scheduler):
    """Drives one protocol execution on the discrete-event clock."""

    runtime_name = "event"

    def __init__(
        self,
        *args: Any,
        delay_model: Optional[DelayModel] = None,
        omission: Optional[OmissionPolicy] = None,
        max_events: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.delay_model = delay_model if delay_model is not None else RushDelay()
        self.omission = omission
        self.max_events = max_events if max_events is not None else DEFAULT_MAX_EVENTS
        # Drawn after the shared party/adversary derivation so the clock
        # stream is seeded deterministically without perturbing any draw
        # the lockstep engine would make.
        self._clock_seed = self.rng.getrandbits(64)

    # -- the event loop --------------------------------------------------------

    def _run_rounds(self) -> Execution:  # the runtime seam's entry point
        metrics = _obs.metrics
        model = self.delay_model
        omission = self.omission
        corrupted = self.adversary.corrupted
        clock = EventClock(self._clock_seed)
        rounds: List[RoundRecord] = []

        batch_number = 0
        started = False
        timed_out = False
        events_processed = 0
        idle_batches = 0
        while True:
            batch_number += 1
            if self.timeout_rounds is not None and batch_number > self.timeout_rounds:
                timed_out = True
                self._note_timeout(batch_number)
                break
            if batch_number > self.max_rounds:
                raise NetworkError(
                    f"protocol did not terminate within {self.max_rounds} event batches"
                )

            # 1. Deliveries: pop every event at the next occupied instant.
            arrivals_for_corrupted: Dict[int, List[Message]] = {
                i: [] for i in corrupted
            }
            queue_drained = False
            if started:
                step = clock.advance()
                if step is None:
                    # Nothing in flight: give round-counting programs one
                    # silent tick — but a protocol that stays silent on a
                    # drained queue is stuck, and is cut off below.
                    queue_drained = True
                    clock.tick()
                    inboxes: Dict[int, List[Message]] = {}
                else:
                    _, deliveries = step
                    events_processed += len(deliveries)
                    if events_processed > self.max_events:
                        self._dump_stall(
                            "event-budget", batch_number, events_processed
                        )
                        raise NetworkError(
                            f"event runtime processed more than {self.max_events}"
                            f" deliveries without terminating"
                        )
                    inboxes = {}
                    for recipient, message in deliveries:
                        inboxes.setdefault(recipient, []).append(message)
                    for i in corrupted:
                        if i in inboxes:
                            arrivals_for_corrupted[i] = inboxes.pop(i)
                if metrics is not None:
                    metrics.inc("net.event.batches")

            # 2. Honest parties speak (everyone unfinished gets an inbox,
            #    empty or not — synchronous programs keep their cadence).
            honest_traffic: List[Message] = []
            for i in self.honest_ids:
                state = self._honest[i]
                if state.finished:
                    continue
                if not started:
                    drafts = state.start()
                else:
                    drafts = state.resume(Inbox(inboxes.get(i, [])))
                honest_traffic.extend(draft.stamped(i) for draft in drafts)

            # 2b. Faults strike honest traffic before the adversary sees it,
            #     exactly as in lockstep (batch index plays the round role).
            if self.fault_injector is not None:
                honest_traffic = self.fault_injector.apply(
                    batch_number, honest_traffic
                )

            # 3. The adversary acts on what the delay model lets it see:
            #    deliveries that just landed, plus — on rushed edges — this
            #    very batch's honest traffic.
            rushed: Dict[int, Inbox] = {}
            for i in corrupted:
                view = list(arrivals_for_corrupted[i])
                for message in honest_traffic:
                    if message.addressed_to(i) and model.rushes(
                        message.sender, i, corrupted
                    ):
                        if omission is not None and omission.omits(
                            message.sender, i, message, clock.edge_rng(message.sender, i)
                        ):
                            self._note_omission(batch_number, message, i)
                            continue
                        view.append(message)
                rushed[i] = Inbox(view)

            corrupted_outboxes = self.adversary.act(batch_number, rushed)
            corrupted_traffic = self._collect_corrupted_traffic(corrupted_outboxes)

            traffic = honest_traffic + corrupted_traffic
            self.adversary.observe(batch_number, traffic)
            rounds.append(RoundRecord(round=batch_number, messages=traffic))
            started = True

            self._observe_round(
                batch_number,
                traffic,
                honest_traffic,
                corrupted_traffic,
                time=clock.now,
                events=events_processed,
            )

            # 4. Schedule every message edge on the clock.
            delivered = 0
            for message in traffic:
                if message.is_broadcast:
                    recipients = range(1, self.n + 1)
                elif not 1 <= message.recipient <= self.n:
                    raise ProtocolError(
                        f"message to unknown party {message.recipient}"
                    )
                else:
                    recipients = (message.recipient,)
                for recipient in recipients:
                    if model.rushes(message.sender, recipient, corrupted):
                        # Already shown to the adversary inside this batch.
                        delivered += 1
                        continue
                    edge_rng = clock.edge_rng(message.sender, recipient)
                    if omission is not None and omission.omits(
                        message.sender, recipient, message, edge_rng
                    ):
                        self._note_omission(batch_number, message, recipient)
                        continue
                    delay = model.edge_delay(message.sender, recipient, edge_rng)
                    clock.schedule(delay, (recipient, message))
                    delivered += 1
            if metrics is not None:
                metrics.inc("net.messages.delivered", delivered)

            if all(state.finished for state in self._honest.values()):
                break

            # 5. Progress guard: a drained queue plus a silent batch means
            #    no event can ever fire again — finalize or fail now
            #    instead of spinning to max_rounds.
            if queue_drained and not traffic:
                idle_batches += 1
                if idle_batches >= IDLE_BATCH_LIMIT and clock.empty:
                    self._dump_stall("queue-drained", batch_number, events_processed)
                    if self.timeout_rounds is not None:
                        timed_out = True
                        self._note_timeout(batch_number)
                        break
                    raise NetworkError(
                        "event queue drained with "
                        f"{sum(1 for s in self._honest.values() if not s.finished)}"
                        " honest parties still running and no traffic in"
                        f" {IDLE_BATCH_LIMIT} batches"
                    )
            else:
                idle_batches = 0

        if metrics is not None and len(clock):
            metrics.inc("net.event.undelivered", len(clock))
        return self._finalize(rounds, timed_out)

    # -- bookkeeping -----------------------------------------------------------

    def _note_omission(self, batch_number: int, message: Message, recipient: int) -> None:
        metrics = _obs.metrics
        if metrics is not None:
            metrics.inc("net.messages.omitted")
        tracer = _obs.tracer
        if tracer.enabled:
            tracer.event(
                "net.omission",
                batch=batch_number,
                sender=message.sender,
                recipient=recipient,
                tag=message.tag,
            )
        flight = _obs.flightrec
        if flight is not None:
            flight.push(
                "omission",
                batch=batch_number,
                session=self.session,
                sender=message.sender,
                recipient=recipient,
                tag=message.tag,
            )

    def _dump_stall(self, reason: str, batch_number: int, events: int) -> None:
        """Snapshot the flight recorder before a stuck run raises/finalizes."""
        unfinished = [i for i, s in self._honest.items() if not s.finished]
        flight = _obs.flightrec
        if flight is not None:
            flight.push(
                "scheduler.stall",
                reason=reason,
                batch=batch_number,
                events=events,
                session=self.session,
                unfinished=unfinished,
            )
        _flightrec.dump_if_active(
            f"event-{reason}",
            session=self.session,
            batch=batch_number,
            events=events,
            delay_model=self.delay_model.spec(),
            unfinished=unfinished,
        )
