"""Adversary model: static corruption, full channel visibility, rushing.

Per Section 3.1 of the paper, the adversary

* statically corrupts a fixed set ``B`` of parties before the run,
* reads *all* communication channels (:meth:`Adversary.observe`),
* is *rushing*: each round it sees the honest parties' messages of that
  round (those addressed to corrupted parties, plus everything on the
  broadcast channel) before choosing the corrupted parties' messages.

Concrete attacks subclass :class:`Adversary` and override :meth:`act`.
:class:`ProgramAdversary` runs arbitrary (possibly malicious) party
programs in the corrupted slots, which covers the common case of
"follow the protocol but with a twist".
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ProtocolError
from .message import Draft, Inbox, Message
from .party import PartyContext, PartyState


class Adversary:
    """Base adversary: corrupted parties send nothing (crash/silent faults)."""

    def __init__(self, corrupted: Iterable[int], auxiliary: Any = None) -> None:
        self.corrupted = frozenset(corrupted)
        self.auxiliary = auxiliary
        self.n: int = 0
        self.config: Any = None
        # None until setup(): the scheduler derives the adversary's RNG from
        # the execution seed, so pinning a default here would silently
        # decouple pre-setup draws from the run's reproducibility story.
        self.rng: Optional[random.Random] = None
        self.corrupted_inputs: Dict[int, Any] = {}
        self._observed: List[Message] = []

    # -- lifecycle ----------------------------------------------------------------

    def setup(
        self,
        n: int,
        config: Any,
        corrupted_inputs: Mapping[int, Any],
        rng: random.Random,
        session: str = "",
    ) -> None:
        """Called once before round 1 with the corrupted parties' inputs."""
        if not all(1 <= i <= n for i in self.corrupted):
            raise ProtocolError(f"corrupted set {set(self.corrupted)} out of range for n={n}")
        self.n = n
        self.config = config
        self.corrupted_inputs = dict(corrupted_inputs)
        self.rng = rng
        self.session = session

    def observe(self, round_number: int, traffic: Sequence[Message]) -> None:
        """See all messages sent in a round (honest and corrupted)."""
        self._observed.extend(traffic)

    def act(
        self, round_number: int, rushed: Mapping[int, Inbox]
    ) -> Dict[int, List[Draft]]:
        """Produce each corrupted party's outbox for this round.

        ``rushed[i]`` is corrupted party i's inbox *including* the honest
        messages sent this very round (the rushing advantage).
        """
        return {i: [] for i in self.corrupted}

    def finish(self) -> Any:
        """The adversary's own output, recorded in the Exec vector."""
        return None

    # -- helpers ------------------------------------------------------------------

    @property
    def observed_messages(self) -> List[Message]:
        return list(self._observed)


class PassiveAdversary(Adversary):
    """Corrupted parties follow the protocol honestly; adversary only listens.

    Running a protocol under :class:`PassiveAdversary` is how we measure its
    honest-execution behaviour while still exercising the corruption and
    rushing machinery.
    """

    def __init__(
        self,
        corrupted: Iterable[int],
        program_factory: Optional[Any] = None,
        auxiliary: Any = None,
    ) -> None:
        super().__init__(corrupted, auxiliary)
        self._program_factory = program_factory
        self._states: Dict[int, PartyState] = {}

    def set_program_factory(self, factory: Any) -> None:
        """Install the protocol's honest program factory (done by the runtime)."""
        if self._program_factory is None:
            self._program_factory = factory

    def setup(
        self,
        n: int,
        config: Any,
        corrupted_inputs: Mapping[int, Any],
        rng: random.Random,
        session: str = "",
    ) -> None:
        super().setup(n, config, corrupted_inputs, rng, session)
        if self._program_factory is None:
            raise ProtocolError("PassiveAdversary has no program factory installed")
        for i in sorted(self.corrupted):
            ctx = PartyContext(
                party_id=i,
                n=n,
                rng=random.Random(rng.getrandbits(64)),
                config=config,
                session=session,
            )
            generator = self._program_factory(ctx, corrupted_inputs.get(i))
            self._states[i] = PartyState(party_id=i, generator=generator)
        self._stash = {i: [] for i in self.corrupted}
        self._started = False

    def act(
        self, round_number: int, rushed: Mapping[int, Inbox]
    ) -> Dict[int, List[Draft]]:
        return _run_corrupted_programs(self, round_number, rushed)

    def finish(self) -> Any:
        return {i: state.output for i, state in self._states.items()}


def _run_corrupted_programs(
    adversary: Any, round_number: int, rushed: Mapping[int, Inbox]
) -> Dict[int, List[Draft]]:
    """Shared driver for adversaries that run programs in corrupted slots.

    Each corrupted program receives its full *information set*: every
    message it has ever been delivered, cumulatively.  Rushing shifts
    delivery a round earlier than honest parties experience it, which would
    desynchronise phase-structured programs if each message were shown only
    once; the cumulative inbox lets a program find each phase's messages by
    tag whenever it looks for them, while still exposing rushed traffic at
    the earliest possible round to programs that want the advantage.
    """
    outboxes: Dict[int, List[Draft]] = {}
    for i, state in adversary._states.items():
        adversary._stash[i].extend(rushed.get(i, Inbox()))
        if not adversary._started:
            outboxes[i] = state.start()
        else:
            outboxes[i] = state.resume(Inbox(adversary._stash[i]))
    adversary._started = True
    return outboxes


class ProgramAdversary(Adversary):
    """Runs an arbitrary (malicious) program in each corrupted slot.

    ``programs`` maps a corrupted party index to a program factory with the
    same signature as honest programs: ``factory(ctx, input) -> generator``.
    Missing indices stay silent.  Because corrupted inboxes carry the current
    round's honest traffic, these programs enjoy the rushing advantage
    automatically from round 2 onward (a generator's first outbox is produced
    before any inbox can be delivered, so a *round-1* rushing attack needs a
    direct :class:`Adversary` subclass overriding :meth:`act`, which does see
    round-1 honest traffic).
    """

    def __init__(
        self,
        programs: Mapping[int, Any],
        auxiliary: Any = None,
        inputs_override: Optional[Mapping[int, Any]] = None,
    ) -> None:
        super().__init__(programs.keys(), auxiliary)
        self._programs = dict(programs)
        self._inputs_override = dict(inputs_override or {})
        self._states: Dict[int, PartyState] = {}
        self._started = False

    def setup(
        self,
        n: int,
        config: Any,
        corrupted_inputs: Mapping[int, Any],
        rng: random.Random,
        session: str = "",
    ) -> None:
        super().setup(n, config, corrupted_inputs, rng, session)
        for i, factory in sorted(self._programs.items()):
            ctx = PartyContext(
                party_id=i,
                n=n,
                rng=random.Random(rng.getrandbits(64)),
                config=config,
                session=session,
            )
            party_input = self._inputs_override.get(i, corrupted_inputs.get(i))
            self._states[i] = PartyState(party_id=i, generator=factory(ctx, party_input))
        self._stash = {i: [] for i in self.corrupted}
        self._started = False

    def act(
        self, round_number: int, rushed: Mapping[int, Inbox]
    ) -> Dict[int, List[Draft]]:
        return _run_corrupted_programs(self, round_number, rushed)

    def finish(self) -> Any:
        return {i: state.output for i, state in self._states.items()}


NO_ADVERSARY = Adversary(corrupted=())
"""An adversary that corrupts nobody (pure honest execution)."""
