"""Execution transcripts and the Exec output vectors of Definition 4.1/4.2.

An :class:`Execution` records everything about one protocol run: the full
per-round traffic, each honest party's output, the adversary's output, and
how many rounds were used.  The ``exec_vector`` property is the
(n+1)-dimensional vector Exec^Π_A(k, z, x) from the paper: the adversary's
output followed by the parties' outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConsistencyError
from .message import Message, RoundRecord


@dataclass
class Execution:
    """The result of running a protocol once under a given adversary."""

    n: int
    corrupted: frozenset
    inputs: Tuple[Any, ...]
    outputs: Dict[int, Any]
    adversary_output: Any
    rounds: List[RoundRecord] = field(default_factory=list)
    config: Any = None
    seed: Optional[int] = None
    """The effective integer seed the run was derived from, when known.

    Recorded by :func:`repro.net.network.run_protocol` so every execution
    artifact states how to reproduce itself; ``None`` means the caller
    supplied an externally seeded ``random.Random`` whose seed the
    framework cannot recover.
    """
    faults: List[Any] = field(default_factory=list)
    """Every fault injected during the run, in injection order.

    A list of :class:`repro.faults.injector.FaultRecord`; empty when the
    run had no fault injector.  Together with ``seed`` and the fault
    plan's own seed this makes faulty runs replayable: the same
    (protocol, seed, plan, fault salt) tuple reproduces the same records.
    """
    timed_out: bool = False
    """True when the run hit the graceful ``timeout_rounds`` deadline.

    Parties still running at the deadline were finalized with the
    protocol's default output instead of raising :class:`NetworkError`.
    """
    runtime: str = "lockstep"
    """Which :mod:`repro.net.runtime` engine drove the run.

    ``"lockstep"`` for the synchronous round scheduler; ``"event"`` for
    the discrete-event engine, in which case each :class:`RoundRecord`
    is one *event batch* (all messages sent at one clock instant) rather
    than a synchronous round.
    """

    @property
    def honest(self) -> List[int]:
        return [i for i in range(1, self.n + 1) if i not in self.corrupted]

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def communication_rounds(self) -> int:
        """Rounds up to the last one carrying any message.

        The scheduler always spends one trailing silent round observing that
        every honest party has returned; this property is the natural
        "round complexity" metric that excludes such padding.
        """
        last = 0
        for record in self.rounds:
            if record.messages:
                last = record.round
        return last

    @property
    def exec_vector(self) -> Tuple[Any, ...]:
        """The (n+1)-vector (adversary output, party 1 output, ..., party n)."""
        parties = tuple(self.outputs.get(i) for i in range(1, self.n + 1))
        return (self.adversary_output,) + parties

    def honest_output(self, party: int) -> Any:
        if party in self.corrupted:
            raise ConsistencyError(f"party {party} is corrupted; it has no honest output")
        return self.outputs.get(party)

    def messages_in_round(self, round_number: int) -> List[Message]:
        for record in self.rounds:
            if record.round == round_number:
                return list(record.messages)
        return []

    def all_messages(self) -> List[Message]:
        return [m for record in self.rounds for m in record.messages]

    def broadcast_history(self) -> List[Tuple[int, int, Any]]:
        """All broadcast-channel traffic as (round, sender, payload)."""
        return [
            (record.round, m.sender, m.payload)
            for record in self.rounds
            for m in record.messages
            if m.is_broadcast
        ]

    # -- parallel-broadcast helpers (Definition 3.1) -------------------------------

    def announced_vector(self, default: int = 0) -> Tuple[Any, ...]:
        """The vector W "announced" by the parties (Definition 3.1).

        Takes any honest party's output vector B_k and reads W_i = B_{k,i}.
        By convention a missing or invalid entry becomes ``default`` (the
        paper assigns the default value 0 to corrupted parties that
        contribute no valid value).

        Raises:
            ConsistencyError: if honest parties disagree (consistency broken)
                or no honest party produced an output vector.
        """
        vectors = []
        for party in self.honest:
            output = self.outputs.get(party)
            if output is None:
                continue
            vectors.append(tuple(output))
        if not vectors:
            raise ConsistencyError("no honest party produced an output vector")
        first = vectors[0]
        for other in vectors[1:]:
            if other != first:
                # Honest disagreement is a conformance failure: snapshot the
                # flight recorder (if one is on) before raising, so the last
                # rounds of traffic that produced the split are preserved.
                from ..obs import flightrec

                flightrec.dump_if_active(
                    "consistency-violation",
                    n=self.n,
                    corrupted=sorted(self.corrupted),
                    seed=self.seed,
                    first=list(first),
                    other=list(other),
                )
                raise ConsistencyError(
                    f"honest parties disagree on announced vector: {first} vs {other}"
                )
        return tuple(default if entry is None else entry for entry in first)
