"""High-level façade for running protocols on the simulated network."""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from .adversary import Adversary
from .scheduler import DEFAULT_MAX_ROUNDS, Scheduler
from .transcript import Execution


def run_protocol(
    protocol,
    inputs: Sequence[Any],
    adversary: Optional[Adversary] = None,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    session: str = "",
) -> Execution:
    """Run ``protocol`` once and return the full :class:`Execution`.

    Args:
        protocol: an object exposing ``n`` (party count), ``setup(rng)``
            (returning the public config: CRS, PKI, parameters, ...) and
            ``program(ctx, input)`` (the honest party program factory).
            Every protocol in :mod:`repro.protocols` and
            :mod:`repro.broadcast` satisfies this.
        inputs: one input per party (corrupted parties' inputs are handed to
            the adversary, mirroring the paper's model).
        adversary: a :class:`repro.net.adversary.Adversary`; defaults to an
            execution with no corruptions.
        rng / seed: explicit randomness for reproducibility. ``seed`` is a
            convenience for ``random.Random(seed)``.
        max_rounds: abort guard.
        session: session identifier mixed into signatures and proofs.
    """
    if rng is None:
        rng = random.Random(seed if seed is not None else 0)
    if adversary is None:
        adversary = Adversary(corrupted=())
    config = protocol.setup(rng)
    scheduler = Scheduler(
        n=protocol.n,
        program_factory=protocol.program,
        inputs=inputs,
        adversary=adversary,
        rng=rng,
        config=config,
        session=session or type(protocol).__name__,
        max_rounds=max_rounds,
    )
    return scheduler.run()
