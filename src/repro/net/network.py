"""High-level façade for running protocols on the simulated network."""

from __future__ import annotations

import logging
import random
from typing import Any, Optional, Sequence

from ..obs import flightrec as _flightrec
from ..obs import runtime as _obs
from .adversary import Adversary
from .runtime import resolve_runtime, scheduler_class
from .scheduler import DEFAULT_MAX_ROUNDS
from .transcript import Execution

logger = logging.getLogger(__name__)

DEFAULT_SEED = 0
"""The seed used when the caller provides neither ``rng`` nor ``seed``."""


def run_protocol(
    protocol: Any,
    inputs: Sequence[Any],
    adversary: Optional[Adversary] = None,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    session: str = "",
    fault_plan: Any = None,
    fault_seed: Optional[int] = None,
    timeout_rounds: Optional[int] = None,
    timeout_output: Any = None,
    runtime: Any = None,
    delay_model: Any = None,
    omission: Any = None,
    max_events: Optional[int] = None,
) -> Execution:
    """Run ``protocol`` once and return the full :class:`Execution`.

    Args:
        protocol: an object exposing ``n`` (party count), ``setup(rng)``
            (returning the public config: CRS, PKI, parameters, ...) and
            ``program(ctx, input)`` (the honest party program factory).
            Every protocol in :mod:`repro.protocols` and
            :mod:`repro.broadcast` satisfies this.
        inputs: one input per party (corrupted parties' inputs are handed to
            the adversary, mirroring the paper's model).
        adversary: a :class:`repro.net.adversary.Adversary`; defaults to an
            execution with no corruptions.
        rng / seed: explicit randomness for reproducibility. ``seed`` is a
            convenience for ``random.Random(seed)``.  When neither is given
            the run falls back to :data:`DEFAULT_SEED`; the effective seed is
            logged, traced, and recorded on the returned :class:`Execution`
            so every run artifact is reproducible from its transcript alone.
        max_rounds: abort guard.
        session: session identifier mixed into signatures and proofs.
        fault_plan: an optional :class:`repro.faults.FaultPlan`; when given,
            a seeded :class:`repro.faults.FaultInjector` rewrites each
            round's honest traffic before the rushing adversary sees it.
        fault_seed: explicit salt for the injector's RNG stream.  Defaults
            to a draw from the execution RNG, so distinct runs inject
            distinct (but replayable) fault patterns; sharded sweeps pass
            per-trial salts to stay partition-independent.
        timeout_rounds: graceful deadline — parties still running after
            this many rounds are finalized with ``timeout_output`` instead
            of aborting the run with :class:`NetworkError`.
        timeout_output: the degraded output (a value, or a callable of the
            party id); protocols pass the paper's default bit vector.
        runtime: which :mod:`repro.net.runtime` engine drives the run —
            ``"lockstep"`` (the paper's synchronous rounds, the default),
            ``"event"`` (the deterministic discrete-event clock), or a
            resolved :class:`repro.net.runtime.RuntimeConfig`.  ``None``
            consults the ``REPRO_RUNTIME`` environment variable, which is
            how the CI runtime matrix re-runs every test under both
            engines.
        delay_model: event-runtime message timing — a
            :class:`repro.net.runtime.DelayModel` or a spec string such as
            ``"uniform:0.5,1.5"``; defaults to ``RushDelay(ConstantDelay(1))``,
            which makes the event engine reproduce lockstep exactly.
        omission: event-runtime loss policy (an
            :class:`repro.net.runtime.OmissionPolicy` or spec string such
            as ``"drop-all:1"``).
        max_events: event-runtime delivery budget — the event-count
            generalization of ``max_rounds``; exceeding it raises
            :class:`NetworkError` after a flight-recorder dump.
    """
    runtime_config = resolve_runtime(runtime, delay_model, omission, max_events)
    effective_seed: Optional[int] = seed
    defaulted = False
    if rng is None:
        if seed is None:
            effective_seed = DEFAULT_SEED
            defaulted = True
            logger.info(
                "run_protocol(%s): no rng/seed supplied; using default seed %d",
                type(protocol).__name__,
                DEFAULT_SEED,
            )
        rng = random.Random(effective_seed)
    elif seed is None:
        # An externally constructed rng: its seed is unknown to us.
        effective_seed = None
    if _obs.tracer.enabled:
        _obs.tracer.event(
            "run_protocol.seed",
            protocol=type(protocol).__name__,
            seed=effective_seed,
            defaulted=defaulted,
        )
    if _obs.flightrec is not None:
        _obs.flightrec.push(
            "run_protocol.start",
            protocol=type(protocol).__name__,
            session=session or type(protocol).__name__,
            seed=effective_seed,
            runtime=runtime_config.kind,
        )
    if adversary is None:
        adversary = Adversary(corrupted=())
    injector = None
    if fault_plan is not None:
        # Imported lazily: repro.faults depends on repro.net, not vice versa.
        from ..faults.injector import FaultInjector

        salt = fault_seed if fault_seed is not None else rng.getrandbits(64)
        injector = FaultInjector(fault_plan, salt=salt)
    config = protocol.setup(rng)
    scheduler_kwargs = dict(
        n=protocol.n,
        program_factory=protocol.program,
        inputs=inputs,
        adversary=adversary,
        rng=rng,
        config=config,
        session=session or type(protocol).__name__,
        max_rounds=max_rounds,
        seed=effective_seed,
        fault_injector=injector,
        timeout_rounds=timeout_rounds,
        timeout_output=timeout_output,
    )
    if runtime_config.kind == "event":
        scheduler_kwargs.update(
            delay_model=runtime_config.resolved_delay_model(),
            omission=runtime_config.omission,
            max_events=runtime_config.max_events,
        )
    scheduler = scheduler_class(runtime_config.kind)(**scheduler_kwargs)
    try:
        return scheduler.run()
    except Exception as exc:
        # A run that dies mid-protocol is exactly what the flight recorder
        # exists for: snapshot the last-N buffer, then let the error out.
        _flightrec.dump_if_active(
            "exception",
            protocol=type(protocol).__name__,
            session=session or type(protocol).__name__,
            seed=effective_seed,
            error=type(exc).__name__,
            detail=str(exc),
        )
        raise
