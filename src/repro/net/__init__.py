"""Network simulation: partially synchronous rounds with a rushing adversary.

See DESIGN.md §3 and the paper's Section 3.1.  The key entry point is
:func:`repro.net.network.run_protocol`.
"""

from .adversary import Adversary, PassiveAdversary, ProgramAdversary
from .event import EventScheduler
from .message import BROADCAST, Draft, Inbox, Message, RoundRecord, broadcast, send
from .network import run_protocol
from .party import PartyContext, PartyState, make_party_rngs
from .runtime import (
    ConstantDelay,
    DelayModel,
    DropAll,
    DropEdges,
    EventClock,
    ExponentialDelay,
    NoOmission,
    OmissionPolicy,
    RandomDrop,
    RushDelay,
    RuntimeConfig,
    UniformDelay,
    delay_model_from_spec,
    omission_from_spec,
    resolve_runtime,
)
from .scheduler import DEFAULT_MAX_ROUNDS, Scheduler
from .transcript import Execution

__all__ = [
    "Adversary",
    "PassiveAdversary",
    "ProgramAdversary",
    "BROADCAST",
    "Draft",
    "Inbox",
    "Message",
    "RoundRecord",
    "broadcast",
    "send",
    "run_protocol",
    "PartyContext",
    "PartyState",
    "make_party_rngs",
    "DEFAULT_MAX_ROUNDS",
    "Scheduler",
    "EventScheduler",
    "Execution",
    "RuntimeConfig",
    "resolve_runtime",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "RushDelay",
    "EventClock",
    "OmissionPolicy",
    "NoOmission",
    "DropAll",
    "DropEdges",
    "RandomDrop",
    "delay_model_from_spec",
    "omission_from_spec",
]
