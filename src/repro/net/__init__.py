"""Network simulation: partially synchronous rounds with a rushing adversary.

See DESIGN.md §3 and the paper's Section 3.1.  The key entry point is
:func:`repro.net.network.run_protocol`.
"""

from .adversary import Adversary, PassiveAdversary, ProgramAdversary
from .message import BROADCAST, Draft, Inbox, Message, RoundRecord, broadcast, send
from .network import run_protocol
from .party import PartyContext, PartyState, make_party_rngs
from .scheduler import DEFAULT_MAX_ROUNDS, Scheduler
from .transcript import Execution

__all__ = [
    "Adversary",
    "PassiveAdversary",
    "ProgramAdversary",
    "BROADCAST",
    "Draft",
    "Inbox",
    "Message",
    "RoundRecord",
    "broadcast",
    "send",
    "run_protocol",
    "PartyContext",
    "PartyState",
    "make_party_rngs",
    "DEFAULT_MAX_ROUNDS",
    "Scheduler",
    "Execution",
]
