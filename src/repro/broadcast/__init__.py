"""Byzantine broadcast substrates: ideal channel, Dolev–Strong, EIG, phase king.

These realize the broadcast channel the paper's model assumes, and the
interactive-consistency parallel composition of Pease et al. [18].
"""

from .base import DEFAULT_VALUE, SingleSenderBroadcast
from .bracha import BrachaBroadcast, bracha_rbc
from .dolev_strong import DolevStrongBroadcast, dolev_strong
from .eig import EIGBroadcast, eig_broadcast
from .emulation import OverPointToPoint
from .ideal import IdealBroadcast, ideal_broadcast
from .interactive_consistency import PRIMITIVES, InteractiveConsistency
from .phase_king import (
    PhaseKingBroadcast,
    PhaseKingConsensus,
    phase_king_broadcast,
    phase_king_consensus,
)

__all__ = [
    "DEFAULT_VALUE",
    "SingleSenderBroadcast",
    "IdealBroadcast",
    "ideal_broadcast",
    "BrachaBroadcast",
    "bracha_rbc",
    "DolevStrongBroadcast",
    "dolev_strong",
    "OverPointToPoint",
    "EIGBroadcast",
    "eig_broadcast",
    "PhaseKingBroadcast",
    "PhaseKingConsensus",
    "phase_king_broadcast",
    "phase_king_consensus",
    "InteractiveConsistency",
    "PRIMITIVES",
]
