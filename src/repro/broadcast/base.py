"""Single-sender Byzantine broadcast: the API and shared conventions.

A *broadcast protocol* lets a designated sender transmit one value such
that (validity) an honest sender's value is the one delivered, and
(agreement) all honest parties deliver the same value even when the sender
is corrupted.  The paper assumes such a channel exists (Section 3.1); this
subpackage provides real implementations over point-to-point links so the
whole stack can run without the ideal channel.

Every implementation exposes two layers:

* a *sub-generator* (``dolev_strong(...)``, ``eig_broadcast(...)``, ...)
  usable inside larger protocols via ``yield from`` or
  :func:`repro.net.compose.run_in_lockstep`;
* a protocol class with ``n`` / ``setup`` / ``program`` runnable directly
  through :func:`repro.net.network.run_protocol`.

Invalid or missing transmissions decide the default value
:data:`DEFAULT_VALUE`, matching the paper's convention that corrupted
parties contributing no valid input announce 0.
"""

from __future__ import annotations

from typing import Any

DEFAULT_VALUE = 0


class SingleSenderBroadcast:
    """Base class for runnable single-sender broadcast protocols.

    Subclasses implement ``setup`` and ``program``.  ``inputs`` handed to
    :func:`run_protocol` should contain the sender's value at the sender's
    position; other positions are ignored.
    """

    def __init__(self, n: int, t: int, sender: int):
        if not 1 <= sender <= n:
            raise ValueError(f"sender {sender} out of range for n={n}")
        if t < 0:
            raise ValueError("t must be non-negative")
        self.n = n
        self.t = t
        self.sender = sender

    def setup(self, rng) -> Any:
        return None

    def program(self, ctx, value):
        raise NotImplementedError
