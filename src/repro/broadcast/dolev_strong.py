"""Dolev--Strong authenticated broadcast (tolerates t < n corruptions).

The classic signature-chain protocol: in round 1 the sender signs and
sends its value; in round r+1 every party relays each newly accepted value
with its own signature appended.  A value is *accepted* at the end of
round r if it arrives with valid signatures from r distinct parties, the
first being the sender.  After t+1 rounds honest parties have identical
accepted sets; a singleton decides that value, anything else decides the
default.

Honest parties relay at most two distinct values — two are enough to prove
sender equivocation, keeping message complexity polynomial.
"""

from __future__ import annotations

from typing import Any, List, Set, Tuple

from ..crypto.signatures import KeyDirectory
from ..net.message import send
from .base import DEFAULT_VALUE, SingleSenderBroadcast

_RELAY_CAP = 2


def _chain_valid(
    directory: KeyDirectory,
    instance: str,
    sender: int,
    value: Any,
    chain: Tuple[Tuple[int, Any], ...],
    minimum: int,
) -> bool:
    """Check a signature chain: distinct signers, sender first, all valid."""
    try:
        signers = [party for party, _ in chain]
    except (TypeError, ValueError):
        return False
    if len(signers) < minimum:
        return False
    if len(set(signers)) != len(signers):
        return False
    if not signers or signers[0] != sender:
        return False
    for party, signature in chain:
        if not directory.verify(party, (instance, value), signature):
            return False
    return True


def dolev_strong(
    ctx,
    directory: KeyDirectory,
    sender: int,
    value: Any,
    t: int,
    instance: str = "bc",
):
    """Sub-generator running one Dolev--Strong instance; returns the decision.

    Args:
        ctx: party context.
        directory: the PKI all parties share.
        sender: broadcasting party.
        value: sender's input (ignored for non-senders).
        t: corruption bound; the protocol runs t+1 rounds.
        instance: tag namespace.
    """
    tag = f"ds:{instance}"
    accepted: Set[Any] = set()
    me = ctx.party_id

    # Round 1: the sender signs and distributes.
    if me == sender:
        signature = directory.sign(sender, (instance, value), ctx.rng)
        chain = ((sender, signature),)
        drafts = [send(j, (value, chain), tag=tag) for j in ctx.others()]
        accepted.add(value)
    else:
        drafts = []

    for round_index in range(1, t + 2):
        inbox = yield drafts
        drafts = []
        if me == sender:
            continue  # the sender already knows its value; it just idles.
        newly_accepted: List[Tuple[Any, Tuple]] = []
        for message in inbox.with_tag(tag):
            payload = message.payload
            if not isinstance(payload, tuple) or len(payload) != 2:
                continue
            received_value, chain = payload
            if received_value in accepted:
                continue
            if len(accepted) >= _RELAY_CAP:
                break
            if _chain_valid(
                directory, instance, sender, received_value, tuple(chain), round_index
            ):
                accepted.add(received_value)
                newly_accepted.append((received_value, tuple(chain)))
        # Prepare next round's relays (skipped after the last round).
        if round_index <= t:
            for received_value, chain in newly_accepted:
                signature = directory.sign(me, (instance, received_value), ctx.rng)
                extended = chain + ((me, signature),)
                for j in ctx.others():
                    drafts.append(send(j, (received_value, extended), tag=tag))

    if len(accepted) == 1:
        return next(iter(accepted))
    return DEFAULT_VALUE


class DolevStrongBroadcast(SingleSenderBroadcast):
    """Runnable Dolev--Strong broadcast with its own generated PKI."""

    def __init__(self, n: int, t: int, sender: int, security_bits: int = 24):
        super().__init__(n=n, t=t, sender=sender)
        self.security_bits = security_bits

    def setup(self, rng):
        from ..crypto.group import SchnorrGroup

        group = SchnorrGroup.for_security(self.security_bits)
        return {"directory": KeyDirectory.generate(group, self.n, rng)}

    def program(self, ctx, value):
        decision = yield from dolev_strong(
            ctx, ctx.config["directory"], self.sender, value, self.t
        )
        return decision
