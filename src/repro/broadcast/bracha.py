"""Bracha reliable broadcast (tolerates t < n/3, no signatures).

The classic three-phase echo protocol: the sender INITs its value; every
party ECHOes the first INIT it accepts; a quorum of ⌈(n+t)/2⌉+1 echoes
(or t+1 READYs — the amplification rule) triggers a READY; 2t+1 READYs
deliver.  Quorum intersection gives agreement without any PKI, at the
price of the optimal-resilience bound n > 3t (Dolev--Strong tolerates
t < n with signatures; this is the information-theoretic counterpart).

Unlike the round-counting members of the zoo, Bracha is *asynchronous*:
parties react to whatever lands in their inbox and loop until the
delivery quorum is met, with no built-in round bound.  That makes it the
natural conformance workload for the event runtime
(``runtime="event"``), where delay models reorder message arrivals —
the protocol must deliver the same value under any schedule.  A run in
which delivery is impossible (e.g. the sender's traffic is omitted)
terminates through ``timeout_rounds``, finalizing undelivered parties
with the timeout output (``None`` by default).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from ..net.message import send
from .base import SingleSenderBroadcast

_INIT = "INIT"
_ECHO = "ECHO"
_READY = "READY"


def bracha_rbc(ctx, sender: int, value: Any, t: int, instance: str = "rbc"):
    """Sub-generator running one Bracha RBC instance; returns the delivery.

    Args:
        ctx: party context.
        sender: broadcasting party.
        value: sender's input (ignored for non-senders).
        t: corruption bound; requires ``n > 3t`` for agreement.
        instance: tag namespace.
    """
    tag = f"bracha:{instance}"
    n = ctx.n
    me = ctx.party_id
    echo_quorum = (n + t) // 2 + 1
    ready_amplify = t + 1
    deliver_quorum = 2 * t + 1

    # Cumulative quorum state: Bracha thresholds count *distinct* parties
    # over the whole execution, so partial inboxes (event batches, delayed
    # or reordered arrivals) accumulate instead of resetting.
    echoes: Dict[Any, Set[int]] = {}
    readies: Dict[Any, Set[int]] = {}
    echoed = False
    ready_sent = False

    def to_all(kind: str, v: Any) -> List[Any]:
        return [send(j, (kind, v), tag=tag) for j in range(1, n + 1) if j != me]

    def decide():
        for v, voters in readies.items():
            if len(voters) >= deliver_quorum:
                return v
        return None

    drafts: List[Any] = []
    if me == sender:
        drafts = to_all(_INIT, value)
        # The sender's own INIT is accepted locally: echo in the same step.
        echoed = True
        echoes.setdefault(value, set()).add(me)
        drafts += to_all(_ECHO, value)

    while True:
        inbox = yield drafts
        drafts = []
        for message in inbox.with_tag(tag):
            payload = message.payload
            if not isinstance(payload, tuple) or len(payload) != 2:
                continue
            kind, v = payload
            if kind == _INIT:
                # Only the designated sender's first INIT is echoed; a
                # Byzantine sender equivocating across parties is resolved
                # by the echo quorum, not here.
                if message.sender != sender or echoed:
                    continue
                echoed = True
                echoes.setdefault(v, set()).add(me)
                drafts += to_all(_ECHO, v)
            elif kind == _ECHO:
                echoes.setdefault(v, set()).add(message.sender)
            elif kind == _READY:
                readies.setdefault(v, set()).add(message.sender)
        if not ready_sent:
            for v in list(echoes):
                if len(echoes[v]) >= echo_quorum:
                    ready_sent = True
                    readies.setdefault(v, set()).add(me)
                    drafts += to_all(_READY, v)
                    break
            else:
                # Amplification: t+1 READYs prove an honest party saw an
                # echo quorum, so joining is safe even without one locally.
                for v in list(readies):
                    if len(readies[v]) >= ready_amplify:
                        ready_sent = True
                        readies.setdefault(v, set()).add(me)
                        drafts += to_all(_READY, v)
                        break
        delivered = decide()
        if delivered is not None:
            if drafts:
                # Flush this step's READY before returning so late peers
                # still reach their own delivery quorum.
                yield drafts
            return delivered


class BrachaBroadcast(SingleSenderBroadcast):
    """Runnable Bracha reliable broadcast (setup-free, needs n > 3t)."""

    def __init__(self, n: int, t: int, sender: int):
        super().__init__(n=n, t=t, sender=sender)
        if n <= 3 * t:
            raise ValueError(
                f"Bracha RBC requires n > 3t; got n={n}, t={t}"
            )

    def program(self, ctx, value):
        decision = yield from bracha_rbc(ctx, self.sender, value, self.t)
        return decision
