"""Phase-king consensus and broadcast (simple variant, t < n/4).

Each of t+1 phases has two rounds: a universal exchange where everyone
reports its current value, then a "king" round where the phase's king
proposes a value and parties with a weak majority keep their own value
while the rest adopt the king's.  With t < n/4 at least one phase has an
honest king, after which all honest parties agree and agreement persists.

Broadcast is obtained by a one-round sender distribution followed by
consensus on the received values.
"""

from __future__ import annotations

from typing import Any, Dict

from ..net.message import send
from .base import DEFAULT_VALUE, SingleSenderBroadcast


def phase_king_consensus(ctx, initial: Any, n: int, t: int, instance: str = "pk"):
    """Sub-generator: consensus among all n parties; returns the agreed value.

    Every party supplies an ``initial`` value; honest parties end with the
    same decision, equal to the common initial value if one exists.
    Requires t < n/4.
    """
    me = ctx.party_id
    current = initial

    for phase in range(1, t + 2):
        exchange_tag = f"pk:{instance}:x{phase}"
        king_tag = f"pk:{instance}:k{phase}"
        king = phase  # party `phase` is this phase's king

        # Round A: universal exchange.
        inbox = yield [
            send(j, current, tag=exchange_tag) for j in range(1, n + 1)
        ]
        # One vote per sender: duplicates from corrupted parties are ignored.
        reported = inbox.payload_by_sender(tag=exchange_tag)
        votes: Dict[Any, int] = {}
        for reported_value in reported.values():
            votes[reported_value] = votes.get(reported_value, 0) + 1
        majority_value, majority_count = DEFAULT_VALUE, 0
        for value, count in sorted(votes.items(), key=lambda kv: repr(kv[0])):
            if count > majority_count:
                majority_value, majority_count = value, count

        # Round B: the king proposes its majority value.
        if me == king:
            inbox = yield [send(j, majority_value, tag=king_tag) for j in range(1, n + 1)]
        else:
            inbox = yield []
        king_message = inbox.first_from(king, tag=king_tag)
        king_value = king_message.payload if king_message else DEFAULT_VALUE

        if majority_count > n // 2 + t:
            current = majority_value
        else:
            current = king_value

    return current


def phase_king_broadcast(ctx, sender: int, value: Any, n: int, t: int, instance: str = "bc"):
    """Sub-generator: broadcast = sender distribution + phase-king consensus."""
    tag = f"pk:{instance}:send"
    me = ctx.party_id
    if me == sender:
        inbox = yield [send(j, value, tag=tag) for j in range(1, n + 1)]
        received = value
    else:
        inbox = yield []
        message = inbox.first_from(sender, tag=tag)
        received = message.payload if message else DEFAULT_VALUE
    decision = yield from phase_king_consensus(ctx, received, n, t, instance=instance)
    return decision


class PhaseKingBroadcast(SingleSenderBroadcast):
    """Runnable phase-king broadcast (requires t < n/4)."""

    def __init__(self, n: int, t: int, sender: int):
        if 4 * t >= n:
            raise ValueError(f"phase king requires t < n/4 (got t={t}, n={n})")
        super().__init__(n=n, t=t, sender=sender)

    def program(self, ctx, value):
        decision = yield from phase_king_broadcast(
            ctx, self.sender, value, self.n, self.t
        )
        return decision


class PhaseKingConsensus:
    """Runnable consensus protocol: every party has an input."""

    def __init__(self, n: int, t: int):
        if 4 * t >= n:
            raise ValueError(f"phase king requires t < n/4 (got t={t}, n={n})")
        self.n = n
        self.t = t

    def setup(self, rng):
        return None

    def program(self, ctx, value):
        decision = yield from phase_king_consensus(ctx, value, self.n, self.t)
        return decision
