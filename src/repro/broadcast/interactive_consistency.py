"""Interactive consistency: n parallel single-sender broadcasts [18].

Every party broadcasts its input in parallel; honest parties end with the
same n-vector of announced values (consistency) that is correct at honest
positions (correctness).  This *is* a parallel broadcast protocol in the
sense of Definition 3.1 — and, as Section 3.2 of the paper stresses, it
provides **no independence**: all instances start in the same round, so a
rushing adversary reads honest round-1 traffic before corrupted senders
commit to theirs.

The underlying single-sender primitive is pluggable: ``"ideal"``,
``"dolev-strong"``, ``"eig"`` or ``"phase-king"``.
"""

from __future__ import annotations

from typing import Any, Dict

from ..crypto.group import SchnorrGroup
from ..crypto.signatures import KeyDirectory
from ..errors import InvalidParameterError
from ..net.compose import run_in_lockstep
from .dolev_strong import dolev_strong
from .eig import eig_broadcast
from .ideal import ideal_broadcast
from .phase_king import phase_king_broadcast

PRIMITIVES = ("ideal", "dolev-strong", "eig", "phase-king")


class InteractiveConsistency:
    """Parallel broadcast: one instance of the primitive per sender."""

    def __init__(
        self,
        n: int,
        t: int,
        primitive: str = "ideal",
        security_bits: int = 24,
    ):
        if primitive not in PRIMITIVES:
            raise InvalidParameterError(
                f"unknown primitive {primitive!r}; choose from {PRIMITIVES}"
            )
        if primitive == "eig" and 3 * t >= n:
            raise InvalidParameterError("eig requires t < n/3")
        if primitive == "phase-king" and 4 * t >= n:
            raise InvalidParameterError("phase king requires t < n/4")
        self.n = n
        self.t = t
        self.primitive = primitive
        self.security_bits = security_bits

    def setup(self, rng):
        if self.primitive == "dolev-strong":
            group = SchnorrGroup.for_security(self.security_bits)
            return {"directory": KeyDirectory.generate(group, self.n, rng)}
        return {}

    def _instance(self, ctx, sender: int, value: Any):
        instance = f"ic{sender}"
        if self.primitive == "ideal":
            return ideal_broadcast(ctx, sender, value, instance=instance)
        if self.primitive == "dolev-strong":
            return dolev_strong(
                ctx, ctx.config["directory"], sender, value, self.t, instance=instance
            )
        if self.primitive == "eig":
            return eig_broadcast(ctx, sender, value, self.n, self.t, instance=instance)
        return phase_king_broadcast(ctx, sender, value, self.n, self.t, instance=instance)

    def program(self, ctx, value):
        instances: Dict[int, Any] = {
            sender: self._instance(
                ctx, sender, value if sender == ctx.party_id else None
            )
            for sender in range(1, self.n + 1)
        }
        results = yield from run_in_lockstep(instances)
        return tuple(results[sender] for sender in range(1, self.n + 1))
