"""Exponential Information Gathering (EIG) Byzantine broadcast, t < n/3.

The unauthenticated protocol of Pease, Shostak and Lamport [18] / Bar-Noy
et al., in its EIG-tree formulation: for t+1 rounds parties relay what
they heard along every path of distinct parties rooted at the sender, then
resolve the tree bottom-up by strict majority (default 0).  Exponential in
t, which is fine at the small party counts the simulations use.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..net.message import send
from .base import DEFAULT_VALUE, SingleSenderBroadcast

Path = Tuple[int, ...]


def _resolve(tree: Dict[Path, Any], path: Path, n: int, t: int) -> Any:
    """Bottom-up majority resolution of the EIG tree."""
    if len(path) == t + 1:
        return tree.get(path, DEFAULT_VALUE)
    votes: Dict[Any, int] = {}
    children = [j for j in range(1, n + 1) if j not in path]
    for j in children:
        value = _resolve(tree, path + (j,), n, t)
        votes[value] = votes.get(value, 0) + 1
    best_value, best_count = DEFAULT_VALUE, -1
    for value, count in sorted(votes.items(), key=lambda kv: repr(kv[0])):
        if count > best_count:
            best_value, best_count = value, count
    # A strict majority is required; ties fall back to the default.
    if 2 * best_count <= len(children):
        return DEFAULT_VALUE
    return best_value


def eig_broadcast(ctx, sender: int, value: Any, n: int, t: int, instance: str = "bc"):
    """Sub-generator for one EIG broadcast; returns the decided value.

    Runs exactly t+1 rounds for every party.  Requires t < n/3 for
    correctness against Byzantine faults.
    """
    tag = f"eig:{instance}"
    me = ctx.party_id
    tree: Dict[Path, Any] = {}

    # Round 1: the sender distributes its value.
    if me == sender:
        drafts = [send(j, ((sender,), value), tag=tag) for j in range(1, n + 1)]
    else:
        drafts = []

    for round_index in range(1, t + 2):
        inbox = yield drafts
        drafts = []
        # Record reports for paths of the just-finished round.
        for message in inbox.with_tag(tag):
            payload = message.payload
            if not isinstance(payload, tuple) or len(payload) != 2:
                continue
            path, reported = payload
            try:
                path = tuple(path)
            except TypeError:
                continue
            if len(path) != round_index:
                continue
            if not path or path[0] != sender:
                continue
            if len(set(path)) != len(path):
                continue
            if path[-1] != message.sender:
                continue
            if any(not 1 <= p <= n for p in path):
                continue
            tree.setdefault(path, reported)
        # Relay every newly learned path (length == round_index) extended by me.
        if round_index <= t:
            for path in sorted(p for p in tree if len(p) == round_index):
                if me in path:
                    continue
                reported = tree[path]
                for j in range(1, n + 1):
                    drafts.append(send(j, (path + (me,), reported), tag=tag))

    # Fill unheard paths with the default before resolving.
    decision = _resolve(tree, (sender,), n, t)
    return decision


class EIGBroadcast(SingleSenderBroadcast):
    """Runnable EIG broadcast (no PKI needed; requires t < n/3)."""

    def __init__(self, n: int, t: int, sender: int):
        if 3 * t >= n:
            raise ValueError(f"EIG broadcast requires t < n/3 (got t={t}, n={n})")
        super().__init__(n=n, t=t, sender=sender)

    def program(self, ctx, value):
        decision = yield from eig_broadcast(ctx, self.sender, value, self.n, self.t)
        return decision
