"""The ideal broadcast channel: one round on the model's broadcast medium.

This is the channel the paper's model already provides ("a network which
allows regular broadcast transmission operations").  The sender puts its
value on the broadcast channel; consistency is guaranteed by the channel
itself.  It is *regular* (non-simultaneous) broadcast: a rushing adversary
still sees the value before corrupted parties speak in the same round.
"""

from __future__ import annotations

from ..net.message import broadcast
from .base import DEFAULT_VALUE, SingleSenderBroadcast


def ideal_broadcast(ctx, sender: int, value, instance: str = "bc"):
    """Sub-generator: one round of ideal broadcast; returns the delivered value.

    Args:
        ctx: the party's :class:`PartyContext`.
        sender: index of the broadcasting party.
        value: the value to send (ignored unless this party is the sender).
        instance: tag namespace so parallel instances stay separate.
    """
    tag = f"ideal:{instance}"
    if ctx.party_id == sender:
        inbox = yield [broadcast(value, tag=tag)]
        return value
    inbox = yield []
    message = inbox.first_from(sender, tag=tag)
    if message is None:
        return DEFAULT_VALUE
    return message.payload


class IdealBroadcast(SingleSenderBroadcast):
    """Runnable wrapper around :func:`ideal_broadcast` (tolerates any t)."""

    def __init__(self, n: int, sender: int, t: int = 0):
        super().__init__(n=n, t=t, sender=sender)

    def program(self, ctx, value):
        result = yield from ideal_broadcast(ctx, self.sender, value)
        return result
