"""Realizing the broadcast channel over point-to-point links.

The simultaneous-broadcast protocols in :mod:`repro.protocols` are written
against the model's broadcast channel (Section 3.1).  This module removes
that assumption: :class:`OverPointToPoint` wraps any such protocol and
runs it on a network with *only* authenticated point-to-point channels,
emulating each broadcast-channel round with a window of n parallel
Dolev--Strong instances (one per potential sender, t+1 rounds each).

Within a window:

* every broadcast draft the inner protocol produced this round is bundled
  into this party's Dolev--Strong payload (a tuple of (tag, payload)
  pairs; parties with nothing to say broadcast the empty bundle);
* point-to-point drafts are sent directly in the window's first round;
* at the window's end each decided bundle is unpacked into synthesized
  broadcast messages and delivered — together with the collected
  point-to-point traffic — as the inner protocol's next inbox.

The wrapper inflates the round complexity by a factor of t+1 and the
message complexity by O(n²) per broadcast, which is precisely the cost
the model's "assume a broadcast channel" abstraction hides; the
``test_broadcast_emulation`` suite measures it.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from ..crypto.group import SchnorrGroup
from ..crypto.signatures import KeyDirectory
from ..errors import ProtocolError
from ..net.compose import run_in_lockstep
from ..net.message import BROADCAST, Draft, Inbox, Message
from ..net.party import PartyContext
from ..obs import runtime as _obs
from .dolev_strong import dolev_strong

_EMPTY_BUNDLE: Tuple = ()


def _collector(ctx, p2p_drafts: List[Draft], window_rounds: int, ds_prefix: str):
    """Sub-generator: send the window's p2p drafts, collect inner traffic.

    Runs for exactly ``window_rounds`` rounds alongside the Dolev--Strong
    instances; returns the messages addressed to this party that belong to
    the inner protocol (everything not tagged as this window's emulation
    traffic).
    """
    collected: List[Message] = []
    drafts = list(p2p_drafts)
    for _ in range(window_rounds):
        inbox = yield drafts
        drafts = []
        for message in inbox:
            if message.tag.startswith(ds_prefix):
                continue
            if message.addressed_to(ctx.party_id):
                collected.append(message)
    return collected


class OverPointToPoint:
    """Run a broadcast-channel protocol over point-to-point links only.

    Args:
        inner: any protocol with ``n`` / ``t`` / ``setup`` / ``program``
            whose programs may use the broadcast channel.
        security_bits: size of the signature PKI backing Dolev--Strong.
    """

    def __init__(self, inner, security_bits: int = 24):
        self.inner = inner
        self.n = inner.n
        self.t = inner.t
        self.security_bits = security_bits
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}/p2p"

    def setup(self, rng: random.Random):
        group = SchnorrGroup.for_security(self.security_bits)
        return {
            "inner": self.inner.setup(rng),
            "directory": KeyDirectory.generate(group, self.n, rng),
        }

    # Convenience passthroughs so the wrapper quacks like the zoo protocols —
    # including the graceful ``timeout_rounds`` default-output fallback the
    # fault-conformance suite relies on (analyzer rule PROTO001).
    def run(self, inputs, adversary=None, rng=None, seed=None, timeout_rounds=None):
        from ..net.network import run_protocol
        from ..protocols.base import DEFAULT_BIT

        timeout_output = (
            tuple([DEFAULT_BIT] * self.n) if timeout_rounds is not None else None
        )
        return run_protocol(
            self,
            list(inputs),
            adversary=adversary,
            rng=rng,
            seed=seed,
            timeout_rounds=timeout_rounds,
            timeout_output=timeout_output,
        )

    def announced(self, inputs, adversary=None, rng=None, seed=None, timeout_rounds=None):
        from ..protocols.base import DEFAULT_BIT, coerce_bit

        execution = self.run(
            inputs, adversary=adversary, rng=rng, seed=seed, timeout_rounds=timeout_rounds
        )
        return tuple(
            coerce_bit(w, default=DEFAULT_BIT)
            for w in execution.announced_vector(default=DEFAULT_BIT)
        )

    def program(self, ctx: PartyContext, value):
        directory: KeyDirectory = ctx.config["directory"]
        inner_ctx = PartyContext(
            party_id=ctx.party_id,
            n=ctx.n,
            rng=random.Random(ctx.rng.getrandbits(64)),
            config=ctx.config["inner"],
            session=ctx.session + "/inner",
        )
        generator = self.inner.program(inner_ctx, value)

        # Prime the inner program: its first outbox needs no inbox.
        try:
            drafts = list(next(generator))
        except StopIteration as stop:
            return stop.value

        window = 0
        window_rounds = self.t + 1
        while True:
            window += 1
            ds_prefix = f"ds:em{window}:"
            p2p_drafts: List[Draft] = []
            bundle: List[Tuple[str, Any]] = []
            for draft in drafts:
                if not isinstance(draft, Draft):
                    raise ProtocolError(
                        f"inner protocol yielded {type(draft).__name__}"
                    )
                if draft.recipient == BROADCAST:
                    bundle.append((draft.tag, draft.payload))
                else:
                    p2p_drafts.append(draft)

            if _obs.metrics is not None:
                _obs.metrics.inc("emulation.windows")
                _obs.metrics.inc("emulation.bundled_broadcasts", len(bundle))
                _obs.metrics.inc("emulation.p2p_passthrough", len(p2p_drafts))
            subprotocols: Dict[Any, Any] = {
                "_collect": _collector(ctx, p2p_drafts, window_rounds, ds_prefix)
            }
            for sender in range(1, self.n + 1):
                payload = tuple(bundle) if sender == ctx.party_id else None
                subprotocols[sender] = dolev_strong(
                    ctx,
                    directory,
                    sender,
                    payload,
                    self.t,
                    instance=f"em{window}:{sender}",
                )
            results = yield from run_in_lockstep(subprotocols)

            synthesized: List[Message] = list(results["_collect"])
            before_synthesis = len(synthesized)
            for sender in range(1, self.n + 1):
                decided = results[sender]
                if not isinstance(decided, tuple):
                    continue  # silent or equivocating sender -> nothing delivered
                for entry in decided:
                    try:
                        tag, payload = entry
                    except (TypeError, ValueError):
                        continue
                    synthesized.append(
                        Message(
                            sender=sender,
                            recipient=BROADCAST,
                            payload=payload,
                            tag=str(tag),
                        )
                    )

            if _obs.metrics is not None:
                _obs.metrics.inc(
                    "emulation.synthesized_broadcasts",
                    len(synthesized) - before_synthesis,
                )
            try:
                drafts = list(generator.send(Inbox(synthesized)))
            except StopIteration as stop:
                return stop.value
