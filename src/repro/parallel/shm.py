"""Shared-memory transport for warm fixed-base tables.

The warm-start payload (:mod:`repro.parallel.warmup`) used to ship only
table *keys*: each pool worker then rebuilt every table from scratch —
hundreds of modular multiplications per ``(p, base)`` pair, per worker,
under ``spawn`` or whenever fork inheritance missed a table.  This
module moves the table *contents* instead, once: the coordinator pickles
its resident tables into one :class:`multiprocessing.shared_memory`
segment at pool creation, and every worker attaches and adopts the rows
(:func:`repro.fastpath.kernels.install_table`) instead of rebuilding.

Lifecycle: the engine publishes on pool creation, keeps the handle, and
unlinks on :meth:`repro.parallel.engine.ExperimentEngine.close` (an
``atexit`` sweep covers engines abandoned without closing).  Workers
only ever attach-read-close — never unlink.  Every failure mode
(platform without shm, size limits, torn segment) degrades to the
rebuild path: shm is a transport optimization, never a correctness
dependency, and the adopted rows are the exact integers the worker would
have rebuilt.
"""

from __future__ import annotations

import atexit
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised only on platforms without shm support
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

TableRows = Dict[Tuple[int, int], List[List[int]]]


@dataclass
class PublishedTables:
    """A live shm segment holding pickled tables (coordinator-side handle)."""

    segment: Any
    size: int

    @property
    def name(self) -> str:
        return self.segment.name

    def descriptor(self) -> Dict[str, Any]:
        """The picklable attach info shipped inside the warm-state payload."""
        return {"name": self.segment.name, "size": self.size}


#: Every segment this process published and has not yet released, so an
#: abandoned engine cannot leak shared memory past interpreter exit.
_PUBLISHED: List[PublishedTables] = []


def publish_tables(tables: TableRows) -> Optional[PublishedTables]:
    """Pickle ``tables`` into a fresh shm segment (None on any failure)."""
    if _shared_memory is None or not tables:
        return None
    data = pickle.dumps(tables, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        segment = _shared_memory.SharedMemory(create=True, size=len(data))
        segment.buf[: len(data)] = data
    except (OSError, ValueError):
        return None
    published = PublishedTables(segment=segment, size=len(data))
    _PUBLISHED.append(published)
    return published


def attach_tables(descriptor: Any) -> Optional[TableRows]:
    """Read a published table dict in a worker (None on any failure)."""
    if _shared_memory is None or not isinstance(descriptor, dict):
        return None
    try:
        segment = _shared_memory.SharedMemory(name=str(descriptor["name"]))
    except (KeyError, OSError, ValueError):
        return None
    try:
        tables = pickle.loads(bytes(segment.buf[: int(descriptor["size"])]))
    except Exception:
        return None
    finally:
        segment.close()
    return tables if isinstance(tables, dict) else None


def release_tables(published: Optional[PublishedTables]) -> None:
    """Close and unlink a published segment (idempotent, never raises)."""
    if published is None:
        return
    if published in _PUBLISHED:
        _PUBLISHED.remove(published)
    for action in (published.segment.close, published.segment.unlink):
        try:
            action()
        except (OSError, ValueError):
            pass


@atexit.register
def _release_all() -> None:  # pragma: no cover - interpreter-exit sweep
    for published in list(_PUBLISHED):
        release_tables(published)
