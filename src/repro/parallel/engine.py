"""The process-pool experiment engine.

:class:`ExperimentEngine` maps task functions over argument tuples, either
inline (``jobs == 1``) or across a pool of worker processes.  Two design
rules make a parallel run *bit-identical* to a serial one:

* **determinism lives in the task list, not the executor** — callers
  derive every trial's randomness from its own salt
  (:class:`repro.experiments.common.TrialPlan`), so the partition of work
  across workers cannot influence any drawn sample;
* **observability folds in submission order** — each worker executes its
  task under a fresh :class:`repro.obs.Metrics` registry (and, when the
  coordinator is tracing, a fresh :class:`repro.obs.Tracer`), ships the
  captured registry back with the payload, and the coordinator merges the
  registries into the ambient one in task order.  Counter sums, histogram
  merges, and span folds are order-insensitive in aggregate, so the
  coordinator's registry ends up equal to what an inline run records.

The worker entry point (:func:`_run_shard`) is a module-level function so
it pickles under every multiprocessing start method.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import fastpath
from ..crypto.backend import apply_backend_env, capture_backend_env
from ..net.runtime import apply_runtime_env, capture_runtime_env
from ..obs import Metrics, Tracer, flightrec as _flightrec
from ..obs import runtime as _obs_runtime
from . import shm, warmup


def default_jobs() -> int:
    """The default worker count: one per CPU the process may use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without CPU affinity (macOS, Windows)
        return os.cpu_count() or 1


def normalize_jobs(jobs: Any) -> int:
    """Coerce a ``--jobs`` value to a positive worker count (None = all CPUs)."""
    if jobs is None:
        return default_jobs()
    count = int(jobs)
    return count if count >= 1 else 1


@dataclass
class ShardOutcome:
    """What one worker ships back: the payload plus its captured observations."""

    payload: Any
    metrics: Metrics = field(default_factory=Metrics)
    trace_records: List[Dict[str, Any]] = field(default_factory=list)
    flight_records: List[Dict[str, Any]] = field(default_factory=list)


def _run_shard(
    task: Tuple[Callable[..., Any], Tuple[Any, ...], bool, bool, Dict[str, str]]
) -> ShardOutcome:
    """Worker entry point: run one task under a fresh observation scope."""
    fn, args, trace, flight, shard_env = task
    # Shards must resolve the same network runtime and crypto backend the
    # coordinator would: explicit under fork, essential under spawn (fresh
    # environment).  The backend is outside the determinism contract but
    # inside the telemetry contract — a worker must describe the same
    # configuration the coordinator ran.
    apply_runtime_env(shard_env)
    apply_backend_env(shard_env)
    tracer = Tracer() if trace else None
    flight_records: List[Dict[str, Any]] = []
    with _obs_runtime.observed(tracer=tracer, metrics=Metrics()) as (_, metrics):
        if flight:
            # The coordinator's recorder is on: give this shard its own
            # ring (a fork child would otherwise append to an inherited
            # copy nobody reads) and ship the buffer back for folding.
            with _flightrec.recording(run_id=f"shard-pid{os.getpid()}") as recorder:
                payload = fn(*args)
            flight_records = recorder.snapshot()
        else:
            payload = fn(*args)
    records = list(tracer.records) if tracer is not None else []
    return ShardOutcome(
        payload=payload,
        metrics=metrics,
        trace_records=records,
        flight_records=flight_records,
    )


def _warm_worker(payload: Any) -> None:
    """Pool initializer: replay the coordinator's warm parameter caches.

    Under ``fork`` (the Linux default) the child already inherited the
    caches and this is a cheap no-op replay; under ``spawn`` it saves each
    worker from re-deriving safe primes and fixed-base tables from scratch.
    """
    warmup.apply_warm_state(payload)


class ExperimentEngine:
    """Maps task functions over argument tuples, inline or across processes.

    The engine owns one **persistent** worker pool: the first parallel
    :meth:`map` creates it (warm-started from the coordinator's parameter
    caches) and later calls reuse it.  Per-``map`` pool creation was the
    dominant cost of small parallel runs — process startup, interpreter
    import, and cache rebuilds charged to every experiment instead of once
    per engine.  Call :meth:`close` (or use the engine as a context
    manager) when done; a closed engine can be reused and will lazily
    recreate its pool.
    """

    def __init__(self, jobs: Any = None):
        self.jobs = normalize_jobs(jobs)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shm_tables: Optional[shm.PublishedTables] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            payload = warmup.export_warm_state()
            if warmup.shm_tables_enabled():
                # Ship table *contents* once via shared memory so workers
                # attach instead of rebuilding; the payload's key list
                # stays as the rebuild fallback.
                self._shm_tables = shm.publish_tables(fastpath.export_tables())
                if self._shm_tables is not None:
                    payload["shm_tables"] = self._shm_tables.descriptor()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_warm_worker,
                initargs=(payload,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; safe on never-parallel engines)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        published, self._shm_tables = self._shm_tables, None
        shm.release_tables(published)

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def map(
        self, fn: Callable[..., Any], arglists: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Run ``fn(*args)`` for each tuple, returning payloads in task order.

        With ``jobs == 1`` (or a single task) everything runs inline in the
        caller's observation scope — no pool, no pickling, no overhead.
        Otherwise tasks fan out over the engine's persistent pool and the
        workers' captured metrics / trace records fold into the caller's
        ambient registry in task order before the payloads are returned.
        """
        tasks = list(arglists)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(*args) for args in tasks]

        trace = _obs_runtime.tracer.enabled
        flight = _obs_runtime.flightrec is not None
        shard_env = {**capture_runtime_env(), **capture_backend_env()}
        shard_tasks = [
            (fn, tuple(args), trace, flight, shard_env) for args in tasks
        ]
        outcomes = list(self._ensure_pool().map(_run_shard, shard_tasks))

        ambient = _obs_runtime.metrics
        recorder = _obs_runtime.flightrec
        for outcome in outcomes:
            if ambient is not None:
                ambient.merge(outcome.metrics)
            if trace and outcome.trace_records:
                _obs_runtime.tracer.fold(outcome.trace_records)
            if recorder is not None and outcome.flight_records:
                recorder.fold(outcome.flight_records)
        return [outcome.payload for outcome in outcomes]

    def __repr__(self) -> str:
        return f"ExperimentEngine(jobs={self.jobs})"


#: The shared inline engine: the serial execution path of every shardable
#: experiment, and the default when no engine is passed.
SERIAL_ENGINE = ExperimentEngine(jobs=1)
