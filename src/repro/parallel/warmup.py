"""Warm-start state for pool workers.

The pool's original sin was cold workers: each child process re-derived
safe primes, regenerated Schnorr groups, and rebuilt fixed-base
exponentiation tables that the coordinator already owned — pure overhead
on a machine where the pool buys no extra CPU.  This module makes the
warm state explicit and portable:

* :func:`prewarm` builds the safe primes, groups, and fixed-base tables
  (generator and the default Pedersen ``h``) for a set of security levels
  in the *current* process;
* :func:`export_warm_state` snapshots that state as a picklable payload;
* :func:`apply_warm_state` replays a payload in another process.

On Linux the default ``fork`` start method means children inherit the
coordinator's caches for free — prewarming the parent *before* the pool
is created is the whole trick.  The exported payload plus the pool
initializer (:func:`repro.parallel.engine._warm_worker`) covers ``spawn``
platforms, where inheritance does not happen.

Warm state is strictly a cache fill: every entry is derived
deterministically from the security level, so a warm worker computes
bit-identical results to a cold one (the cold one just pays to rebuild
the same entries on first use).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List

from .. import fastpath
from ..crypto import group as _group
from ..crypto.commitment import PedersenParameters
from . import shm

#: Gate for the shared-memory table transport (default on).  Off, the
#: warm payload falls back to shipping table keys that workers rebuild.
ENV_SHM_TABLES = "REPRO_SHM_TABLES"


def shm_tables_enabled() -> bool:
    """Whether warm tables ride to pool workers via shared memory.

    Outside the determinism contract by construction: the shm payload
    carries the exact rows a worker would rebuild, so this flag can only
    move setup cost, never a computed value.
    """
    raw = os.environ.get(ENV_SHM_TABLES, "1")  # repro: allow[ENV001]
    return raw.strip().lower() not in ("0", "false", "off")


def security_levels_for(config: Any) -> List[int]:
    """The security levels a config's experiments will touch.

    Union of the headline ``security_bits`` and the ``security_levels``
    sweep; falls back to the repo defaults when the config carries neither.
    """
    levels = set()
    bits = getattr(config, "security_bits", None)
    if bits:
        levels.add(int(bits))
    for sweep_bits in getattr(config, "security_levels", ()) or ():
        levels.add(int(sweep_bits))
    if not levels:
        levels = {16, 24, 32}
    return sorted(levels)


def prewarm(security_levels: Iterable[int]) -> None:
    """Build parameters and fixed-base tables for the given security levels.

    Idempotent and cumulative: each level's safe prime, group object,
    generator table, and default Pedersen ``h`` table end up resident in
    this process's caches.
    """
    for bits in sorted({int(b) for b in security_levels}):
        group = _group.SchnorrGroup.for_security(bits)
        fastpath.ensure_table(group.p, group.q, group.generator.value)
        params = PedersenParameters.generate(group)
        fastpath.ensure_table(group.p, group.q, params.h.value)


def prewarm_for_config(config: Any) -> None:
    """:func:`prewarm` for everything :func:`security_levels_for` reports."""
    prewarm(security_levels_for(config))


def export_warm_state() -> Dict[str, Any]:
    """Snapshot the current process's parameter caches as a picklable payload."""
    return {
        "safe_primes": _group.cached_safe_primes(),
        "tables": fastpath.cached_table_keys(),
    }


def apply_warm_state(payload: Any) -> None:
    """Replay an :func:`export_warm_state` payload in this process.

    Tolerates ``None`` / empty payloads.  Table entries are ``(p, base)``
    pairs from safe-prime groups, so the exponent bound is always
    ``q = (p - 1) // 2``.
    """
    if not payload:
        return
    _group.seed_safe_primes(payload.get("safe_primes", ()))
    descriptor = payload.get("shm_tables")
    if descriptor is not None and shm_tables_enabled():
        tables = shm.attach_tables(descriptor)
        if tables:
            for (p, base), rows in tables.items():
                fastpath.install_table(p, base, rows)
    # Rebuild path: a no-op for tables already resident (fork-inherited
    # or shm-installed), the full build when the shm leg was unavailable.
    for p, base in payload.get("tables", ()):
        fastpath.ensure_table(p, (p - 1) // 2, base)
