"""Deterministic parallel execution for the experiment harness.

The reproduction's experiments are embarrassingly parallel Monte-Carlo
loops.  This package shards them — whole experiments, and within the
heavy experiments independent trial batches — across CPU workers while
keeping one hard guarantee: **a parallel run is bit-identical to a serial
run at any worker count**.  Determinism comes from per-trial RNG salts
(:class:`repro.experiments.common.TrialPlan`), not from execution order;
cost accounting survives the process boundary because each worker's
:class:`repro.obs.Metrics` registry (and trace records) fold back into
the coordinator's in task order.

Entry points:

* ``python -m repro.experiments --jobs N`` — the CLI;
* :func:`repro.experiments.registry.run_all` with ``parallel=N``;
* :class:`ExperimentEngine` — the reusable process-pool mapper.
"""

from .engine import SERIAL_ENGINE, ExperimentEngine, ShardOutcome, default_jobs, normalize_jobs
from .warmup import (
    apply_warm_state,
    export_warm_state,
    prewarm,
    prewarm_for_config,
    security_levels_for,
)

__all__ = [
    "ExperimentEngine",
    "SERIAL_ENGINE",
    "ShardOutcome",
    "apply_warm_state",
    "default_jobs",
    "export_warm_state",
    "normalize_jobs",
    "prewarm",
    "prewarm_for_config",
    "security_levels_for",
]
