"""The arithmetic kernels behind :mod:`repro.fastpath`.

Every kernel is an *exact integer identity* with the naive code path it
replaces — no approximation, no probabilistic shortcut — so enabling the
fastpath can never change a computed value:

* **windowed fixed-base exponentiation** (:func:`pow_mod`): for a base
  ``b`` that keeps recurring (the group generator, the Pedersen ``h``),
  precompute ``b ** (d << (w * i)) mod p`` for every window position
  ``i`` and digit ``d``; then ``b ** e`` is a product of one table entry
  per nonzero base-``2**w`` digit of ``e``.  The identity
  ``b**x * b**y == b**(x+y) (mod p)`` holds for *any* integer ``b``, so
  the table path equals ``pow(b, e, p)`` unconditionally.
* **simultaneous multi-exponentiation** (:func:`multi_pow`): Shamir's
  trick — one shared square-and-multiply ladder over all bases, with
  precomputed subset products when the base count is small.  Again exact
  for arbitrary bases and exponents.
* **Horner's rule in the exponent** (:func:`vss_expected`): the VSS
  share check needs ``prod_j c_j ** (x**j mod q)``.  When ``x**t < q``
  the reductions are the identity and the product telescopes to
  ``(((c_t)**x * c_{t-1})**x ... )**x * c_0`` — ``t`` *tiny*-exponent
  pows instead of ``t+1`` full-width ones.  When ``x**t`` might reach
  ``q`` (or a base might lie outside the order-``q`` subgroup, where
  reduction is no longer harmless) the kernel falls back to
  :func:`multi_pow` over the explicitly reduced exponents, which mirrors
  the naive loop digit for digit.

Cache policy: tables are built per ``(p, base)`` after a base has been
seen :data:`PROMOTION_THRESHOLD` times (or eagerly via
:func:`ensure_table`, used by the pool-worker warm start), capped at
:data:`MAX_TABLES` per process.  Caches never need invalidation — a
``(p, base)`` pair fully determines the table contents.

Telemetry lives in a dedicated process-local registry (``STATS``, a
:class:`repro.obs.Metrics`): cache hit rates depend on process topology
(a pool worker's caches are colder than the coordinator's), so recording
them into the ambient deterministic registry would break the
serial-vs-parallel artifact equality that CI gates on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..obs import Metrics

#: Process-local fastpath telemetry (fastpath.* counters).  Deliberately
#: separate from :data:`repro.obs.runtime.metrics` — see module docstring.
STATS = Metrics()

#: Window width in bits for fixed-base tables (measured best at 4--64 bit
#: exponents on CPython: ~3-5x over built-in ``pow``).
WINDOW = 6

#: Build a fixed-base table once a base has been exponentiated this often.
PROMOTION_THRESHOLD = 3

#: Hard cap on resident fixed-base tables (a 48-bit table is ~500 ints).
MAX_TABLES = 128

#: Hard cap on memoized Lagrange coefficient sets.
MAX_LAGRANGE_SETS = 4096

_TABLES: Dict[Tuple[int, int], List[List[int]]] = {}
_USE_COUNTS: Dict[Tuple[int, int], int] = {}
_LAGRANGE: Dict[Tuple[int, Tuple[int, ...]], Tuple[int, ...]] = {}


def clear_caches() -> None:
    """Drop every per-process cache (tables, use counts, Lagrange sets)."""
    _TABLES.clear()
    _USE_COUNTS.clear()
    _LAGRANGE.clear()


def cache_sizes() -> Dict[str, int]:
    return {
        "tables": len(_TABLES),
        "use_counts": len(_USE_COUNTS),
        "lagrange_sets": len(_LAGRANGE),
    }


# -- fixed-base windowed exponentiation ---------------------------------------------


def _build_table(p: int, base: int, exponent_bits: int) -> List[List[int]]:
    """Rows of ``base ** (d << (WINDOW * i)) mod p`` for all digits d."""
    size = 1 << WINDOW
    digits = (exponent_bits + WINDOW - 1) // WINDOW
    table: List[List[int]] = []
    b = base % p
    for _ in range(digits):
        row = [1] * size
        acc = 1
        for d in range(1, size):
            acc = acc * b % p
            row[d] = acc
        table.append(row)
        b = row[size - 1] * b % p  # b ** (2 ** WINDOW)
    return table


def ensure_table(p: int, q: int, base: int) -> None:
    """Eagerly build the fixed-base table for ``(p, base)`` (warm start)."""
    key = (p, base % p)
    if key not in _TABLES and len(_TABLES) < MAX_TABLES:
        _TABLES[key] = _build_table(p, key[1], q.bit_length())
        STATS.inc("fastpath.table.builds")


def cached_table_keys() -> List[Tuple[int, int]]:
    """The ``(p, base)`` pairs with resident tables (for warm-state export)."""
    return list(_TABLES)


def pow_mod(p: int, q: int, base: int, exponent: int) -> int:
    """``pow(base, exponent, p)`` through the fixed-base table cache.

    ``exponent`` must already be normalized to ``[0, q)`` by the caller
    (:meth:`repro.crypto.group.SchnorrGroup.normalize_exponent`).
    """
    key = (p, base)
    table = _TABLES.get(key)
    if table is None:
        STATS.inc("fastpath.pow.table_misses")
        count = _USE_COUNTS.get(key, 0) + 1
        if count >= PROMOTION_THRESHOLD and len(_TABLES) < MAX_TABLES:
            _USE_COUNTS.pop(key, None)
            table = _TABLES[key] = _build_table(p, base, q.bit_length())
            STATS.inc("fastpath.table.builds")
        else:
            if len(_USE_COUNTS) > 4 * MAX_TABLES:
                _USE_COUNTS.clear()
            _USE_COUNTS[key] = count
            return pow(base, exponent, p)
    else:
        STATS.inc("fastpath.pow.table_hits")
    acc = 1
    mask = (1 << WINDOW) - 1
    i = 0
    while exponent:
        digit = exponent & mask
        if digit:
            acc = acc * table[i][digit] % p
        exponent >>= WINDOW
        i += 1
    return acc


# -- simultaneous multi-exponentiation (Shamir's trick) -----------------------------

#: Subset-product precomputation is worthwhile only for a handful of bases
#: (the table has ``2**k - 1`` entries).
_MAX_SUBSET_BASES = 4


def multi_pow(p: int, bases: Sequence[int], exponents: Sequence[int]) -> int:
    """``prod_i bases[i] ** exponents[i] mod p`` with one shared ladder.

    Exact for arbitrary integer bases and non-negative exponents.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have equal length")
    STATS.inc("fastpath.multiexp.calls")
    pairs = [(b % p, e) for b, e in zip(bases, exponents) if e > 0]
    if not pairs:
        return 1 % p
    max_bits = max(e.bit_length() for _, e in pairs)
    if len(pairs) <= _MAX_SUBSET_BASES:
        # Precompute the product of every base subset; each ladder step is
        # one squaring plus at most one multiplication.
        k = len(pairs)
        products = [1] * (1 << k)
        for i, (b, _) in enumerate(pairs):
            bit = 1 << i
            for mask in range(bit):
                products[bit | mask] = products[mask] * b % p
        exps = [e for _, e in pairs]
        acc = 1
        for bit in range(max_bits - 1, -1, -1):
            acc = acc * acc % p
            mask = 0
            for i in range(k):
                if (exps[i] >> bit) & 1:
                    mask |= 1 << i
            if mask:
                acc = acc * products[mask] % p
        return acc
    acc = 1
    for bit in range(max_bits - 1, -1, -1):
        acc = acc * acc % p
        for b, e in pairs:
            if (e >> bit) & 1:
                acc = acc * b % p
    return acc


# -- VSS share-check product --------------------------------------------------------


def vss_expected(p: int, q: int, commitment_values: Sequence[int], x: int) -> int:
    """``prod_j commitment_values[j] ** (x**j mod q) mod p`` — exactly.

    Mirrors the naive ``expected * commitment ** x_power`` loop of
    :mod:`repro.crypto.vss` for every input, including commitment values
    an adversary injects from outside the order-``q`` subgroup (where the
    ``mod q`` reduction of the exponent is *not* harmless and Horner's
    rule would diverge — those take the reduced-exponent ladder instead).
    """
    values = [c % p for c in commitment_values]
    if not values:
        return 1 % p
    degree = len(values) - 1
    if degree == 0:
        return values[0]
    x = int(x)
    if 0 <= x and x.bit_length() * degree < q.bit_length():
        # x**degree < q, so every naive exponent x**j mod q == x**j and the
        # product telescopes via Horner's rule in the exponent.
        STATS.inc("fastpath.vss.horner")
        acc = values[degree]
        for value in reversed(values[:degree]):
            acc = pow(acc, x, p) * value % p
        return acc
    STATS.inc("fastpath.vss.ladder")
    exponents = []
    x_power = 1
    for _ in values:
        exponents.append(x_power)
        x_power = x_power * x % q
    return multi_pow(p, values, exponents)


# -- Pedersen commitment kernel -----------------------------------------------------


def pedersen_commit(p: int, q: int, g: int, h: int, value: int, randomness: int) -> int:
    """``g**value * h**randomness mod p`` via the fixed-base tables.

    Callers pass exponents already reduced to ``[0, q)``; ``g`` and ``h``
    are hot bases (every commit/verify reuses them), so both promote to
    tables almost immediately.
    """
    return pow_mod(p, q, g, value) * pow_mod(p, q, h, randomness) % p


# -- memoized Lagrange coefficient sets ---------------------------------------------


def lagrange_cache_get(modulus: int, xs: Tuple[int, ...]):
    """The cached coefficient tuple for evaluation points ``xs``, or None."""
    entry = _LAGRANGE.get((modulus, xs))
    if entry is None:
        STATS.inc("fastpath.lagrange.misses")
    else:
        STATS.inc("fastpath.lagrange.hits")
    return entry


def lagrange_cache_put(modulus: int, xs: Tuple[int, ...], coefficients: Tuple[int, ...]) -> None:
    if len(_LAGRANGE) >= MAX_LAGRANGE_SETS:
        _LAGRANGE.clear()
    _LAGRANGE[(modulus, xs)] = coefficients
