"""The arithmetic kernels behind :mod:`repro.fastpath`.

Every kernel is an *exact integer identity* with the naive code path it
replaces — no approximation, no probabilistic shortcut — so enabling the
fastpath can never change a computed value:

* **windowed fixed-base exponentiation** (:func:`pow_mod`): for a base
  ``b`` that keeps recurring (the group generator, the Pedersen ``h``),
  precompute ``b ** (d << (w * i)) mod p`` for every window position
  ``i`` and digit ``d``; then ``b ** e`` is a product of one table entry
  per nonzero base-``2**w`` digit of ``e``.  The identity
  ``b**x * b**y == b**(x+y) (mod p)`` holds for *any* integer ``b``, so
  the table path equals ``pow(b, e, p)`` unconditionally.
* **simultaneous multi-exponentiation** (:func:`multi_pow`): Shamir's
  trick — one shared square-and-multiply ladder over all bases, with
  precomputed subset products when the base count is small.  Again exact
  for arbitrary bases and exponents.
* **Horner's rule in the exponent** (:func:`vss_expected`): the VSS
  share check needs ``prod_j c_j ** (x**j mod q)``.  When ``x**t < q``
  the reductions are the identity and the product telescopes to
  ``(((c_t)**x * c_{t-1})**x ... )**x * c_0`` — ``t`` *tiny*-exponent
  pows instead of ``t+1`` full-width ones.  When ``x**t`` might reach
  ``q`` (or a base might lie outside the order-``q`` subgroup, where
  reduction is no longer harmless) the kernel falls back to
  :func:`multi_pow` over the explicitly reduced exponents, which mirrors
  the naive loop digit for digit.

Cache policy: tables are built per ``(p, base)`` after a base has been
seen :data:`PROMOTION_THRESHOLD` times (or eagerly via
:func:`ensure_table`, used by the pool-worker warm start), capped at
:data:`MAX_TABLES` per process.  Caches never need invalidation — a
``(p, base)`` pair fully determines the table contents.

Telemetry lives in a dedicated process-local registry (``STATS``, a
:class:`repro.obs.Metrics`): cache hit rates depend on process topology
(a pool worker's caches are colder than the coordinator's), so recording
them into the ambient deterministic registry would break the
serial-vs-parallel artifact equality that CI gates on.

Backend seam: every primitive routes through the process-global
:mod:`repro.crypto.backend` (pure-python reference by default, gmpy2
when available).  Table entries and ladder accumulators are held in the
backend's native big-int type; every kernel unwraps to ``int`` at its
return boundary, so the two backends are observationally identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..crypto import backend as _backend
from ..obs import Metrics

#: Process-local fastpath telemetry (fastpath.* counters).  Deliberately
#: separate from :data:`repro.obs.runtime.metrics` — see module docstring.
STATS = Metrics()

#: Window width in bits for fixed-base tables (measured best at 4--64 bit
#: exponents on CPython: ~3-5x over built-in ``pow``).
WINDOW = 6

#: Build a fixed-base table once a base has been exponentiated this often.
PROMOTION_THRESHOLD = 3

#: Hard cap on resident fixed-base tables (a 48-bit table is ~500 ints).
MAX_TABLES = 128

#: Hard cap on memoized Lagrange coefficient sets.
MAX_LAGRANGE_SETS = 4096

_TABLES: Dict[Tuple[int, int], List[List[int]]] = {}
_USE_COUNTS: Dict[Tuple[int, int], int] = {}
_LAGRANGE: Dict[Tuple[int, Tuple[int, ...]], Tuple[int, ...]] = {}


def clear_caches() -> None:
    """Drop every per-process cache (tables, use counts, Lagrange sets)."""
    _TABLES.clear()
    _USE_COUNTS.clear()
    _LAGRANGE.clear()


def install_table(p: int, base: int, rows: Sequence[Sequence[int]]) -> bool:
    """Adopt a prebuilt fixed-base table (shared-memory warm start).

    Rows come as plain ``int`` lists (the portable export format) and are
    wrapped into the active backend's native type on the way in.  Returns
    ``False`` without touching anything when the table is already
    resident or the cache is full — a fork-inherited table wins over a
    replayed one.
    """
    key = (p, base % p)
    if key in _TABLES or len(_TABLES) >= MAX_TABLES:
        return False
    wrap = _backend.active().wrap
    _TABLES[key] = [[wrap(value) for value in row] for row in rows]
    _USE_COUNTS.pop(key, None)
    STATS.inc("fastpath.table.installs")
    return True


def export_tables() -> Dict[Tuple[int, int], List[List[int]]]:
    """Every resident table as plain ``int`` rows (the portable format).

    The inverse of :func:`install_table`: backend-native entries (gmpy2
    ``mpz``) are unwrapped so the payload pickles small and installs
    under *any* backend.
    """
    return {
        key: [[int(value) for value in row] for row in rows]
        for key, rows in _TABLES.items()
    }


def cache_sizes() -> Dict[str, int]:
    return {
        "tables": len(_TABLES),
        "use_counts": len(_USE_COUNTS),
        "lagrange_sets": len(_LAGRANGE),
    }


# -- fixed-base windowed exponentiation ---------------------------------------------


def _build_table(p: int, base: int, exponent_bits: int) -> List[List[Any]]:
    """Rows of ``base ** (d << (WINDOW * i)) mod p`` for all digits d.

    Entries are backend-native (``int`` or ``mpz``) so the hot ladder in
    :func:`pow_mod` multiplies in the backend's arithmetic throughout.
    """
    size = 1 << WINDOW
    digits = (exponent_bits + WINDOW - 1) // WINDOW
    table: List[List[Any]] = []
    wrap = _backend.active().wrap
    one = wrap(1)
    b = wrap(base % p)
    for _ in range(digits):
        row = [one] * size
        acc = one
        for d in range(1, size):
            acc = acc * b % p
            row[d] = acc
        table.append(row)
        b = row[size - 1] * b % p  # b ** (2 ** WINDOW)
    return table


def ensure_table(p: int, q: int, base: int) -> None:
    """Eagerly build the fixed-base table for ``(p, base)`` (warm start)."""
    key = (p, base % p)
    if key not in _TABLES and len(_TABLES) < MAX_TABLES:
        _TABLES[key] = _build_table(p, key[1], q.bit_length())
        STATS.inc("fastpath.table.builds")


def cached_table_keys() -> List[Tuple[int, int]]:
    """The ``(p, base)`` pairs with resident tables (for warm-state export)."""
    return list(_TABLES)


def pow_mod(p: int, q: int, base: int, exponent: int) -> int:
    """``pow(base, exponent, p)`` through the fixed-base table cache.

    ``exponent`` must already be normalized to ``[0, q)`` by the caller
    (:meth:`repro.crypto.group.SchnorrGroup.normalize_exponent`).
    """
    key = (p, base)
    table = _TABLES.get(key)
    if table is None:
        STATS.inc("fastpath.pow.table_misses")
        count = _USE_COUNTS.get(key, 0) + 1
        if count >= PROMOTION_THRESHOLD and len(_TABLES) < MAX_TABLES:
            _USE_COUNTS.pop(key, None)
            table = _TABLES[key] = _build_table(p, base, q.bit_length())
            STATS.inc("fastpath.table.builds")
        else:
            if len(_USE_COUNTS) > 4 * MAX_TABLES:
                _USE_COUNTS.clear()
            _USE_COUNTS[key] = count
            return int(_backend.active().powmod(base, exponent, p))
    else:
        STATS.inc("fastpath.pow.table_hits")
    acc = 1
    mask = (1 << WINDOW) - 1
    i = 0
    while exponent:
        digit = exponent & mask
        if digit:
            acc = acc * table[i][digit] % p
        exponent >>= WINDOW
        i += 1
    return int(acc)


# -- simultaneous multi-exponentiation (Shamir's trick) -----------------------------

#: Subset-product precomputation is worthwhile only for a handful of bases
#: (the table has ``2**k - 1`` entries).
_MAX_SUBSET_BASES = 4

#: Digit-window width for the many-base bucket multi-exp.  4 bits is the
#: measured sweet spot for 64-point batches at simulation-grade moduli:
#: wider windows pay quadratically more bucket-aggregation
#: multiplications, narrower ones pay more windows of digit bookkeeping.
_BUCKET_WINDOW = 4


def _bucket_multi_pow(p: int, pairs: Sequence[Tuple[int, int]], wrap) -> int:
    """Yao's bucket method over ``pairs`` of ``(base, exponent)``.

    For each :data:`_BUCKET_WINDOW`-bit digit window (most significant
    first) every base is multiplied into the bucket named by its digit;
    the window's contribution ``prod_d bucket[d]**d`` falls out of a
    running suffix product, and successive windows are glued with
    ``_BUCKET_WINDOW`` squarings.
    """
    width = _BUCKET_WINDOW
    digit_mask = (1 << width) - 1
    top = ((max(e.bit_length() for _, e in pairs) - 1) // width) * width
    one = wrap(1)
    acc = one
    for shift in range(top, -width, -width):
        if shift != top:
            for _ in range(width):
                acc = acc * acc % p
        buckets = [one] * (digit_mask + 1)
        for base, exponent in pairs:
            digit = (exponent >> shift) & digit_mask
            if digit:
                buckets[digit] = buckets[digit] * base % p
        suffix = one
        window = one
        for digit in range(digit_mask, 0, -1):
            suffix = suffix * buckets[digit] % p
            window = window * suffix % p
        acc = acc * window % p
    return int(acc)


def multi_pow(p: int, bases: Sequence[int], exponents: Sequence[int]) -> int:
    """``prod_i bases[i] ** exponents[i] mod p`` — exactly, two strategies.

    Exact for arbitrary integer bases and non-negative exponents.  Up to
    :data:`_MAX_SUBSET_BASES` bases use Shamir's trick: one subset-product
    table and a single shared square-and-multiply ladder.  Larger batches
    (the RLC batch-verification path: many bases, short combiner
    exponents) use Yao's bucket method with :data:`_BUCKET_WINDOW`-bit
    digit windows — per window every base lands in one digit bucket (one
    multiplication), the 15 buckets aggregate with a running suffix
    product, and only the window boundaries pay squarings.  The digit
    bookkeeping is O(bases · windows) interpreter operations, an order
    less than any per-bit shared ladder over the same batch.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have equal length")
    STATS.inc("fastpath.multiexp.calls")
    backend = _backend.active()
    pairs = [(b % p, e) for b, e in zip(bases, exponents, strict=True) if e > 0]
    if not pairs:
        return 1 % p
    wrap = backend.wrap
    if len(pairs) > _MAX_SUBSET_BASES:
        return _bucket_multi_pow(p, pairs, wrap)
    k = len(pairs)
    # Product of every base subset; each ladder step then costs at most
    # one multiplication on top of the shared squaring.
    products: List[Any] = [1] * (1 << k)
    for i, (b, _) in enumerate(pairs):
        bit = 1 << i
        wrapped = wrap(b)
        for mask in range(bit):
            products[bit | mask] = products[mask] * wrapped % p
    exps = [e for _, e in pairs]
    acc = wrap(1)
    for bit in range(max(e.bit_length() for e in exps) - 1, -1, -1):
        acc = acc * acc % p
        mask = 0
        for i, e in enumerate(exps):
            if (e >> bit) & 1:
                mask |= 1 << i
        if mask:
            acc = acc * products[mask] % p
    return int(acc)


# -- VSS share-check product --------------------------------------------------------


def vss_expected(p: int, q: int, commitment_values: Sequence[int], x: int) -> int:
    """``prod_j commitment_values[j] ** (x**j mod q) mod p`` — exactly.

    Mirrors the naive ``expected * commitment ** x_power`` loop of
    :mod:`repro.crypto.vss` for every input, including commitment values
    an adversary injects from outside the order-``q`` subgroup (where the
    ``mod q`` reduction of the exponent is *not* harmless and Horner's
    rule would diverge — those take the reduced-exponent ladder instead).
    """
    values = [c % p for c in commitment_values]
    if not values:
        return 1 % p
    degree = len(values) - 1
    if degree == 0:
        return values[0]
    x = int(x)
    if 0 <= x and x.bit_length() * degree < q.bit_length():
        # x**degree < q, so every naive exponent x**j mod q == x**j and the
        # product telescopes via Horner's rule in the exponent.
        STATS.inc("fastpath.vss.horner")
        backend = _backend.active()
        acc = backend.wrap(values[degree])
        for value in reversed(values[:degree]):
            acc = backend.powmod(acc, x, p) * value % p
        return int(acc)
    STATS.inc("fastpath.vss.ladder")
    exponents = []
    x_power = 1
    for _ in values:
        exponents.append(x_power)
        x_power = x_power * x % q
    return multi_pow(p, values, exponents)


# -- Pedersen commitment kernel -----------------------------------------------------


def pedersen_commit(p: int, q: int, g: int, h: int, value: int, randomness: int) -> int:
    """``g**value * h**randomness mod p`` via the fixed-base tables.

    Callers pass exponents already reduced to ``[0, q)``; ``g`` and ``h``
    are hot bases (every commit/verify reuses them), so both promote to
    tables almost immediately.
    """
    return pow_mod(p, q, g, value) * pow_mod(p, q, h, randomness) % p


# -- memoized Lagrange coefficient sets ---------------------------------------------


def lagrange_cache_get(modulus: int, xs: Tuple[int, ...]):
    """The cached coefficient tuple for evaluation points ``xs``, or None."""
    entry = _LAGRANGE.get((modulus, xs))
    if entry is None:
        STATS.inc("fastpath.lagrange.misses")
    else:
        STATS.inc("fastpath.lagrange.hits")
    return entry


def lagrange_cache_put(modulus: int, xs: Tuple[int, ...], coefficients: Tuple[int, ...]) -> None:
    if len(_LAGRANGE) >= MAX_LAGRANGE_SETS:
        _LAGRANGE.clear()
    _LAGRANGE[(modulus, xs)] = coefficients
