"""Random-linear-combination batch verification kernels.

Verifying m Pedersen openings (or VSS share checks) one at a time costs
m full verifications.  The standard batching trick collapses them into
~one multi-exponentiation: draw small random coefficients γ_1..γ_m and
check the single aggregated identity

    prod_i C_i ** γ_i  ==  g ** (Σ γ_i m_i mod q) * h ** (Σ γ_i r_i mod q)

(for Pedersen openings; the VSS variants aggregate the share checks the
same way).  **Completeness is exact**: when every item verifies, both
sides are the same subgroup element for *any* coefficients, because the
per-item identities multiply together.  **Soundness is probabilistic**:
if at least one item is invalid, the aggregate accepts only when the
coefficients hit a specific linear relation, which happens with
probability ≤ 1 / 2**:data:`COMBINER_BITS` over the coefficient space.
Callers therefore treat a batch *reject* as authoritative only after
re-checking items individually (the batch never decides which item is
bad), and a batch *accept* as the verdict.

Determinism: coefficients are derived by hashing the batch content
(Fiat–Shamir style) — never from wall-clock entropy, and deliberately
*not* from the trial RNG stream, because existing call sites
(``vss.reconstruct``) must not shift RNG consumption and move
bit-identical artifacts.  Same batch, same coefficients, same verdict,
on every backend and process topology.  Tests may inject an explicit
``rng`` to exercise the combiner distribution.

Telemetry lands in the process-local ``fastpath.batch.*`` counters
(:data:`repro.fastpath.kernels.STATS`); the deterministic ``crypto.*``
counters are mirrored by the *call sites* in :mod:`repro.crypto`, not
here.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence

from .kernels import STATS, multi_pow, pow_mod

#: Bits per random-linear-combination coefficient.  Soundness error of a
#: single batched check is ~2**-16; small coefficients keep the shared
#: multi-exp ladder short, which is where the batch speedup comes from.
COMBINER_BITS = 16


def _combiner_seed(domain: bytes, payload: Sequence[int]) -> bytes:
    """A content hash binding the coefficients to the exact batch.

    Encoding is injective: every value is serialized at one shared fixed
    width (wide enough for the batch maximum), and the width and count
    ride in the header — so no two distinct payloads share a digest.
    One ``join`` + one hash keeps the seed an order of magnitude cheaper
    than per-value hasher updates, which matters because combiner
    derivation is pure overhead on top of the aggregated check.
    """
    values = [int(value) for value in payload]
    width = ((max(values).bit_length() + 7) // 8 or 1) if values else 1
    blob = b"".join(value.to_bytes(width, "big") for value in values)
    header = domain + width.to_bytes(2, "big") + len(values).to_bytes(4, "big")
    return hashlib.sha256(header + blob).digest()


def combiner_coefficients(
    domain: bytes, payload: Iterable[int], count: int, rng: Optional[object] = None
) -> List[int]:
    """``count`` nonzero combiner coefficients in ``[1, 2**COMBINER_BITS]``.

    Deterministic (SHA-256 of ``domain`` + length-prefixed ``payload``)
    unless an explicit ``rng`` is supplied for tests.
    """
    if rng is not None:
        return [1 + rng.getrandbits(COMBINER_BITS) for _ in range(count)]
    seed = _combiner_seed(domain, payload)
    coefficients: List[int] = []
    block_index = 0
    width = COMBINER_BITS // 8
    while len(coefficients) < count:
        block = hashlib.sha256(seed + block_index.to_bytes(4, "big")).digest()
        block_index += 1
        for offset in range(0, len(block) - width + 1, width):
            if len(coefficients) >= count:
                break
            coefficients.append(1 + int.from_bytes(block[offset : offset + width], "big"))
    return coefficients


def _record(kind: str, count: int, ok: bool) -> None:
    STATS.inc("fastpath.batch.calls")
    STATS.inc("fastpath.batch.items", count)
    STATS.inc(f"fastpath.batch.{kind}.calls")
    STATS.inc("fastpath.batch.accepts" if ok else "fastpath.batch.rejects")


def pedersen_batch_verify(
    p: int,
    q: int,
    g: int,
    h: int,
    commitments: Sequence[int],
    values: Sequence[int],
    randomness: Sequence[int],
    rng: Optional[object] = None,
) -> bool:
    """Batch-check ``C_i == g**values[i] * h**randomness[i]`` for all i.

    Exponents must be pre-normalized to ``[0, q)`` by the caller (the
    same contract as :func:`repro.fastpath.kernels.pedersen_commit`).
    """
    count = len(commitments)
    if not count == len(values) == len(randomness):
        raise ValueError("batch components must have equal length")
    if count == 0:
        return True
    payload = [p, q, g, h, *commitments, *values, *randomness]
    gammas = combiner_coefficients(b"pedersen-open", payload, count, rng)
    aggregated = multi_pow(p, list(commitments), gammas)
    value_exp = sum(gamma * value for gamma, value in zip(gammas, values, strict=True)) % q
    blind_exp = sum(gamma * rand for gamma, rand in zip(gammas, randomness, strict=True)) % q
    expected = pow_mod(p, q, g, value_exp) * pow_mod(p, q, h, blind_exp) % p
    ok = aggregated % p == expected
    _record("pedersen", count, ok)
    return ok


def _aggregate_commitment_exponents(
    q: int, degree_plus_one: int, xs: Sequence[int], gammas: Sequence[int]
) -> List[int]:
    """``e_j = Σ_i γ_i * (x_i**j mod q) mod q`` for ``j < degree_plus_one``.

    These mirror the per-item exponents of the naive share check
    (``x**j mod q``), aggregated under the combiner — all small-int
    arithmetic, no group operations.
    """
    exponents: List[int] = []
    x_powers = [1] * len(xs)
    for _ in range(degree_plus_one):
        exponents.append(sum(g * xp for g, xp in zip(gammas, x_powers, strict=True)) % q)
        x_powers = [xp * x % q for xp, x in zip(x_powers, xs, strict=True)]
    return exponents


def feldman_batch_verify(
    p: int,
    q: int,
    generator: int,
    commitments: Sequence[int],
    xs: Sequence[int],
    values: Sequence[int],
    rng: Optional[object] = None,
) -> bool:
    """Batch the Feldman share checks ``g**v_i == prod_j c_j**(x_i**j mod q)``.

    ``values`` must be pre-normalized to ``[0, q)``; ``xs`` are the raw
    share indices.
    """
    count = len(xs)
    if count != len(values):
        raise ValueError("batch components must have equal length")
    if count == 0:
        return True
    payload = [p, q, generator, *commitments, *xs, *values]
    gammas = combiner_coefficients(b"feldman-share", payload, count, rng)
    value_exp = sum(gamma * value for gamma, value in zip(gammas, values, strict=True)) % q
    actual = pow_mod(p, q, generator, value_exp)
    exponents = _aggregate_commitment_exponents(q, len(commitments), xs, gammas)
    expected = multi_pow(p, list(commitments), exponents)
    ok = actual % p == expected % p
    _record("feldman", count, ok)
    return ok


def pedersen_vss_batch_verify(
    p: int,
    q: int,
    g: int,
    h: int,
    commitments: Sequence[int],
    xs: Sequence[int],
    values: Sequence[int],
    blindings: Sequence[int],
    rng: Optional[object] = None,
) -> bool:
    """Batch the Pedersen VSS checks ``g**v_i h**b_i == prod_j C_j**(x_i**j)``."""
    count = len(xs)
    if not count == len(values) == len(blindings):
        raise ValueError("batch components must have equal length")
    if count == 0:
        return True
    payload = [p, q, g, h, *commitments, *xs, *values, *blindings]
    gammas = combiner_coefficients(b"pedersen-share", payload, count, rng)
    value_exp = sum(gamma * value for gamma, value in zip(gammas, values, strict=True)) % q
    blind_exp = sum(gamma * blind for gamma, blind in zip(gammas, blindings, strict=True)) % q
    actual = pow_mod(p, q, g, value_exp) * pow_mod(p, q, h, blind_exp) % p
    exponents = _aggregate_commitment_exponents(q, len(commitments), xs, gammas)
    expected = multi_pow(p, list(commitments), exponents)
    ok = actual == expected % p
    _record("pedersen_vss", count, ok)
    return ok
