"""repro.fastpath — bit-identical performance kernels for the hot paths.

The crypto layer (:mod:`repro.crypto.group`, ``commitment``, ``vss``,
``polynomial``) routes its inner loops through this package when the
fastpath is enabled (the default).  Every kernel computes *exactly* the
same values as the naive code it replaces — see :mod:`.kernels` for the
per-kernel equivalence argument and DESIGN.md §"fastpath" for the cache
invalidation rules — and the call sites mirror the naive paths' logical
``crypto.*`` counter increments, so experiment artifacts are identical
with the fastpath on or off (``experiments.diffjson`` gates this in CI).

Disable with ``REPRO_FASTPATH=0`` in the environment, or at runtime::

    from repro import fastpath
    with fastpath.disabled():
        ...  # naive kernels, for A/B benchmarks

Telemetry: ``fastpath.stats()`` snapshots the process-local ``fastpath.*``
counters (table hits/misses/builds, Horner vs ladder dispatch, Lagrange
memo hits).  They are process-local by design — cache warmth depends on
process topology, so these counters must stay out of the deterministic
ambient registry that experiment artifacts embed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict

from ..crypto import backend as _backend
from . import kernels
from .batch import (  # noqa: F401  (re-exported batch-verification API)
    COMBINER_BITS,
    combiner_coefficients,
    feldman_batch_verify,
    pedersen_batch_verify,
    pedersen_vss_batch_verify,
)
from .kernels import (  # noqa: F401  (re-exported kernel API)
    STATS,
    cache_sizes,
    cached_table_keys,
    clear_caches,
    ensure_table,
    export_tables,
    install_table,
    lagrange_cache_get,
    lagrange_cache_put,
    multi_pow,
    pedersen_commit,
    pow_mod,
    vss_expected,
)

# Import-time process switch, outside the shard capture seam by design: the
# kernels are bit-identical to the naive path, so a worker resolving a
# different value cannot move any artifact (diffjson gates this in CI).
_ENABLED = os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in ("0", "false", "off")  # repro: allow[ENV001]


def enabled() -> bool:
    """Whether the fastpath kernels are active in this process."""
    return _ENABLED


def configure(enable: bool) -> None:
    """Switch the fastpath on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(enable)


@contextmanager
def disabled():
    """Scope with the fastpath off (the naive reference path)."""
    previous = _ENABLED
    configure(False)
    try:
        yield
    finally:
        configure(previous)


def stats() -> Dict[str, Any]:
    """A snapshot of the process-local ``fastpath.*`` telemetry counters."""
    snapshot = STATS.snapshot()
    snapshot["caches"] = cache_sizes()
    snapshot["enabled"] = _ENABLED
    snapshot["backend"] = _backend.active().name
    return snapshot


def reset_stats() -> Dict[str, Any]:
    """Snapshot-and-clear the ``fastpath.*`` telemetry registry.

    Returns the snapshot taken *before* clearing, so a caller measuring
    one workload in a long-lived process (a warm pool worker serving many
    runs) can bracket it: ``reset_stats()`` → run → ``stats()``.  Only
    the counters are cleared — the kernel caches themselves (and their
    warmth) are untouched; use :func:`clear_caches` for those.
    """
    snapshot = stats()
    STATS.reset()
    return snapshot
