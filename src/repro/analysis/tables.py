"""Fixed-width text rendering for experiment tables and the Figure 1 matrix."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (the harness's output format)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths, strict=True)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_cost_report(
    zoo_rows: Iterable[Sequence[object]],
    emulation_rows: Iterable[Sequence[object]] = (),
    title: str = "",
) -> str:
    """Render the E-COST measured-complexity report.

    ``zoo_rows`` carry one row per (n, protocol):
    ``(n, protocol, rounds, messages, bytes, group_exp, vss_verified,
    field_mul)``.  ``emulation_rows`` carry the OverPointToPoint blowup:
    ``(n, inner_msgs, p2p_msgs, msg_blowup, inner_rounds, p2p_rounds)``.
    """
    sections: List[str] = [
        render_table(
            ["n", "protocol", "rounds", "msgs", "bytes", "grp-exp", "vss-vrfy", "fld-mul"],
            zoo_rows,
            title=title,
        )
    ]
    emulation_rows = list(emulation_rows)
    if emulation_rows:
        sections.append(
            render_table(
                ["n", "inner msgs", "p2p msgs", "msg blowup", "inner rnds", "p2p rnds"],
                emulation_rows,
                title="OverPointToPoint emulation: what 'assume a broadcast channel' hides",
            )
        )
    return "\n\n".join(sections)


def render_figure1(cells: dict) -> str:
    """Render the Figure 1 implication diagram from measured arrows.

    ``cells`` maps (source, target) definition names to a dict with keys
    ``class`` (the distribution class the arrow is quantified over) and
    ``holds`` (bool).  Output mirrors the paper's arrow notation.
    """
    lines = ["Figure 1 — measured implications and separations", ""]
    for (source, target), info in sorted(cells.items()):
        arrow = "==>" if info["holds"] else "=/=>"
        lines.append(
            f"  {source:>3} {arrow:>5} {target:<3}   over {info['class']}"
            + (f"   [{info.get('note', '')}]" if info.get("note") else "")
        )
    return "\n".join(lines)
