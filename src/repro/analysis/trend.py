"""Negligibility trends across security parameters.

"Negligible in k" cannot be observed at a single k.  The experiments run
each estimator at several security levels and call a gap *negligible-
consistent* when it stays below threshold everywhere and does not grow
with k; an attack shows up as a gap that is large at every k (the paper's
separations are constant-gap, independent of k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ExperimentError
from .stats import DEFAULT_TAU_HIGH, DEFAULT_TAU_LOW, Decision


@dataclass(frozen=True)
class TrendVerdict:
    decision: Decision
    gaps: Tuple[Tuple[int, float], ...]
    reason: str


def assess_trend(
    gaps_by_k: Dict[int, float],
    errors_by_k: Dict[int, float],
    tau_low: float = DEFAULT_TAU_LOW,
    tau_high: float = DEFAULT_TAU_HIGH,
    growth_slack: float = 0.05,
) -> TrendVerdict:
    """Combine per-k gap estimates into one negligibility verdict.

    * VIOLATED if the pessimistic gap exceeds ``tau_high`` at every k
      (a robust, parameter-independent attack);
    * CONSISTENT if the optimistic gap stays under ``tau_low`` at every k
      and the gap does not grow by more than ``growth_slack`` from the
      smallest to the largest k;
    * INCONCLUSIVE otherwise.
    """
    if not gaps_by_k:
        raise ExperimentError("no security levels supplied")
    if set(gaps_by_k) != set(errors_by_k):
        raise ExperimentError("gaps and errors must cover the same k values")
    ks = sorted(gaps_by_k)
    gaps = tuple((k, gaps_by_k[k]) for k in ks)

    if all(gaps_by_k[k] - errors_by_k[k] > tau_high for k in ks):
        return TrendVerdict(Decision.VIOLATED, gaps, "gap exceeds tau_high at every k")
    small_everywhere = all(gaps_by_k[k] < tau_low for k in ks)
    grows = gaps_by_k[ks[-1]] > gaps_by_k[ks[0]] + growth_slack
    if small_everywhere and not grows:
        return TrendVerdict(
            Decision.CONSISTENT, gaps, "gap below tau_low at every k, no growth"
        )
    return TrendVerdict(Decision.INCONCLUSIVE, gaps, "mixed evidence across k")
