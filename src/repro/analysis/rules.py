"""The repo-specific rule battery for ``repro analyze``.

Each rule encodes one invariant the reproduction's replay gates depend
on.  Module allowlists below are the *designed seams* — every entry
carries the justification that an auditor needs; anything else goes
through an inline ``# repro: allow[...]`` (spot exemption, justified in
a comment at the site) or the shrink-only baseline file.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .engine import SEVERITY_ERROR, SEVERITY_WARNING, FileContext, Finding, Rule

# -- documented allowlists -----------------------------------------------------------

#: DET002 — the obs timing allowlist.  Wall-clock reads are legal only where
#: the value demonstrably stays out of diffjson-gated artifact payloads:
TIMING_ALLOWLIST: Mapping[str, str] = {
    "repro.obs.tracer": (
        "span/event timestamps; exported traces are wall-clock by design and"
        " never enter experiment artifacts"
    ),
    "repro.obs.flightrec": (
        "ring-buffer record timestamps; flight dumps are debugging artifacts,"
        " not diffjson-gated payloads"
    ),
    "repro.experiments.registry": (
        "run_experiment wall_seconds accounting; diffjson strips"
        " metrics.wall_seconds before comparing artifacts"
    ),
    "repro.experiments.ablation": (
        "per-variant ms/run measurement; recorded under the wall-clock"
        " metrics keys diffjson strips, never in table/data payloads"
    ),
}

#: ENV001 — the runtime/parallel capture seam.  ``REPRO_*`` reads are legal
#: only where the parallel engine can capture and replay them into pool
#: shards, keeping ``--jobs N`` replayable:
ENV_SEAM_ALLOWLIST: Mapping[str, str] = {
    "repro.net.runtime": (
        "capture_runtime_env/apply_runtime_env — the seam itself; shards"
        " replay the coordinator's runtime choice"
    ),
    "repro.parallel.engine": "ships the captured environment with every shard task",
    "repro.parallel.warmup": (
        "worker warm-start replays the captured environment; the shm-table"
        " gate only moves setup cost, never a computed value"
    ),
    "repro.crypto.backend": (
        "capture_backend_env/apply_backend_env — the crypto-backend seam"
        " itself; shards replay the coordinator's backend choice"
    ),
}

#: DET001 — no module is allowed ambient randomness; the empty allowlist is
#: the point (every RNG stream must descend from an explicit seed).
RANDOMNESS_ALLOWLIST: Mapping[str, str] = {}

_METRIC_NAME = re.compile(r"[a-z][a-z0-9_]*(\.[a-z0-9_]+)*")
_METRIC_FRAGMENT = re.compile(r"[a-z0-9_.]*")


def _call_name(ctx: FileContext, node: ast.Call) -> Optional[str]:
    return ctx.qualified(node.func)


def _is_metrics_receiver(node: ast.AST) -> bool:
    """Heuristic: is this expression a Metrics registry?

    Matches the repo's naming convention — a bare ``metrics`` name, any
    ``*.metrics`` attribute (``self.metrics``, ``_obs.metrics``), or the
    conventional leading-underscore variants.
    """
    if isinstance(node, ast.Name):
        return node.id in ("metrics", "_metrics") or node.id.endswith("_metrics")
    if isinstance(node, ast.Attribute):
        return node.attr in ("metrics", "_metrics")
    return False


def _is_tracer_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("tracer", "_tracer") or node.id.endswith("_tracer")
    if isinstance(node, ast.Attribute):
        return node.attr in ("tracer", "_tracer")
    return False


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class UnseededRandomness(Rule):
    """DET001 — ambient or unseeded randomness.

    Every random value in an execution must descend from an explicit seed
    so that serial, ``--jobs N``, and replay runs draw identical streams.
    The module-level ``random.*`` functions share one ambient generator;
    ``random.Random()`` with no seed self-seeds from the OS; ``os.urandom``
    / ``uuid.uuid4`` / ``secrets`` are entropy by definition.
    """

    id = "DET001"
    severity = SEVERITY_ERROR
    title = "unseeded or ambient randomness"
    rationale = "breaks seed-replayability of executions and artifacts"

    _AMBIENT = {
        "random.random", "random.randint", "random.randrange", "random.choice",
        "random.choices", "random.shuffle", "random.sample", "random.getrandbits",
        "random.uniform", "random.gauss", "random.seed", "random.betavariate",
        "random.expovariate", "random.randbytes",
    }
    _ENTROPY_PREFIXES = ("os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in RANDOMNESS_ALLOWLIST:
            return
        for call in _walk_calls(ctx.tree):
            name = _call_name(ctx, call)
            if name is None:
                continue
            if name in self._AMBIENT:
                yield self.finding(
                    ctx, call,
                    f"ambient RNG call {name}() — draw from an explicitly"
                    " seeded random.Random stream instead",
                )
            elif any(
                name == prefix or name.startswith(prefix)
                for prefix in self._ENTROPY_PREFIXES
            ):
                yield self.finding(
                    ctx, call,
                    f"{name}() is OS entropy — executions must be"
                    " seed-replayable",
                )
            elif name in ("random.Random", "random.SystemRandom"):
                if name == "random.SystemRandom":
                    yield self.finding(
                        ctx, call, "random.SystemRandom is OS entropy"
                    )
                elif not call.args and not any(
                    kw.arg in (None, "x", "seed") for kw in call.keywords
                ):
                    yield self.finding(
                        ctx, call,
                        "random.Random() without a seed self-seeds from the"
                        " OS — pass a derived seed",
                    )


class WallClockRead(Rule):
    """DET002 — wall-clock reads outside the obs timing allowlist.

    Wall time is the canonical nondeterminism: any read that flows into a
    diffjson-gated artifact breaks serial-vs-parallel equality.  Timing
    belongs in the obs layer (tracer/flightrec) or in the wall-clock
    metrics keys that ``experiments.diffjson`` strips.
    """

    id = "DET002"
    severity = SEVERITY_ERROR
    title = "wall-clock read outside the obs timing allowlist"
    rationale = "wall time in an artifact path breaks replay equality"

    _CLOCKS = {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in TIMING_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = ctx.qualified(node)
            if name in self._CLOCKS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {name} — only the obs timing allowlist"
                    " may read the clock (see repro.analysis.rules"
                    ".TIMING_ALLOWLIST)",
                )


class UnorderedIteration(Rule):
    """DET003 — iterating a set/frozenset without an explicit order.

    Set iteration order depends on insertion history and hash seeds; when
    it feeds transcripts, artifacts, or message emission the result is a
    run-to-run diff that no seed replays.  Wrap the iterable in
    ``sorted(...)`` (or iterate an ordered container).
    """

    id = "DET003"
    severity = SEVERITY_ERROR
    title = "iteration over an unordered set"
    rationale = "set order leaks insertion/hash history into outputs"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_locals = self._set_typed_names(ctx)
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                reason = self._set_reason(ctx, iter_expr, set_locals)
                if reason is not None:
                    yield self.finding(
                        ctx, iter_expr,
                        f"iterating {reason} — wrap in sorted(...) so the"
                        " order is deterministic",
                    )

    def _set_typed_names(self, ctx: FileContext) -> Set[str]:
        """Names assigned (anywhere in the module) from a set expression.

        Deliberately flow-insensitive: a name that ever holds a set is
        suspect everywhere.  False positives opt out inline.
        """
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(ctx, node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ann = ast.unparse(node.annotation) if node.annotation else ""
                if re.match(r"(typing\.)?(Set|FrozenSet|set|frozenset)\b", ann):
                    names.add(node.target.id)
        return names

    def _is_set_expr(
        self, ctx: FileContext, node: ast.expr, set_locals: Set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Call):
            name = _call_name(ctx, node)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                # ``a.union(b)`` only returns a set when a is one; resolve
                # through the locally inferred set names to avoid flagging
                # unrelated APIs that happen to share the method name.
                return self._is_set_expr(ctx, node.func.value, set_locals)
        return False

    def _set_reason(
        self, ctx: FileContext, node: ast.expr, set_locals: Set[str]
    ) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call) and self._is_set_expr(ctx, node, set_locals):
            return f"the result of {ast.unparse(node.func)}(...)"
        if isinstance(node, ast.Name) and node.id in set_locals:
            return f"set-typed name {node.id!r}"
        return None


class TelemetryIntoMetrics(Rule):
    """DET004 — process-local telemetry flowing into artifact counters.

    ``fastpath.STATS`` (and anything like it) counts cache warmth, which
    depends on process topology: folding it into a :class:`Metrics`
    registry makes serial and ``--jobs N`` artifacts diverge by design.
    Telemetry is exported as gauges only (``obs.export.fastpath_gauges``).
    """

    id = "DET004"
    severity = SEVERITY_ERROR
    title = "process-local telemetry recorded into Metrics"
    rationale = "cache-warmth counters differ across process topologies"

    _TELEMETRY = ("repro.fastpath.STATS", "repro.fastpath.kernels.STATS",
                  "repro.fastpath.stats", "fastpath.STATS", "fastpath.stats")

    def _references_telemetry(self, ctx: FileContext, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Attribute, ast.Name)):
                name = ctx.qualified(sub)
                if name is None:
                    continue
                if any(
                    name == t or name.startswith(t + ".") for t in self._TELEMETRY
                ):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("inc", "observe", "merge"):
                continue
            if not _is_metrics_receiver(func.value):
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if self._references_telemetry(ctx, arg):
                    yield self.finding(
                        ctx, call,
                        "process-local telemetry (fastpath.STATS) recorded"
                        " into a Metrics registry — telemetry must stay out"
                        " of diffjson-gated counters",
                    )
                    break


class FloatIntoCounter(Rule):
    """ART001 — float arithmetic written into artifact counters.

    Counters land verbatim in diffjson-gated artifacts; float division or
    literals make values platform/rounding sensitive and turn exact
    artifact equality into luck.  Keep counters integral — derive ratios
    at render time, or use a histogram for measured values.
    """

    id = "ART001"
    severity = SEVERITY_ERROR
    title = "float arithmetic into a diffjson-gated counter"
    rationale = "rounding detail becomes part of the replay contract"

    def _has_float_arith(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute) or func.attr != "inc":
                continue
            if not _is_metrics_receiver(func.value):
                continue
            if len(call.args) < 2 and not call.keywords:
                continue
            amounts = call.args[1:] + [
                kw.value for kw in call.keywords if kw.arg == "amount"
            ]
            for amount in amounts:
                if self._has_float_arith(amount):
                    yield self.finding(
                        ctx, call,
                        "float arithmetic in a counter increment — counters"
                        " are diffjson-gated; keep them integral (use a"
                        " histogram for measured values)",
                    )
                    break


class MessageSlots(Rule):
    """MSG001 — message/record dataclasses must declare ``slots=True``.

    These classes are allocated per message on the scheduler hot path and
    pickled across pool shards; ``__dict__``-backed instances cost memory
    and admit silent attribute typos that replay comparisons then chase.
    """

    id = "MSG001"
    severity = SEVERITY_WARNING
    title = "message/record dataclass without slots=True"
    rationale = "hot-path allocations and typo-safety on replayed records"

    _NAME = re.compile(r"(Message|Record|Draft)$")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._NAME.search(node.name):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                name = ctx.qualified(target)
                if name not in ("dataclass", "dataclasses.dataclass"):
                    continue
                has_slots = isinstance(decorator, ast.Call) and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
                if not has_slots:
                    yield self.finding(
                        ctx, node,
                        f"dataclass {node.name} looks like a message/record"
                        " type but lacks slots=True",
                    )


class RunHonorsTimeout(Rule):
    """PROTO001 — ``run`` overrides must honor ``timeout_rounds``.

    The zoo contract (``protocols.base``): under ``timeout_rounds`` a
    party that misses the deadline announces the default output instead of
    raising.  An override that drops the parameter silently strips the
    graceful-degradation path the fault-conformance suite relies on.
    """

    id = "PROTO001"
    severity = SEVERITY_ERROR
    title = "protocol run() override ignores timeout_rounds"
    rationale = "fault conformance needs the default-output fallback"

    def _is_protocol_class(self, ctx: FileContext, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = ctx.qualified(base) or ""
            if "Protocol" in name or "Broadcast" in name:
                return True
        methods = {
            item.name for item in node.body if isinstance(item, ast.FunctionDef)
        }
        return {"setup", "program"} <= methods

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_protocol_class(ctx, node):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef) or item.name not in (
                    "run", "announced",
                ):
                    continue
                mentioned = {
                    arg.arg
                    for args in (
                        item.args.args, item.args.kwonlyargs, item.args.posonlyargs,
                    )
                    for arg in args
                }
                mentioned.update(
                    sub.id for sub in ast.walk(item) if isinstance(sub, ast.Name)
                )
                mentioned.update(
                    sub.attr for sub in ast.walk(item) if isinstance(sub, ast.Attribute)
                )
                if "timeout_rounds" not in mentioned:
                    yield self.finding(
                        ctx, item,
                        f"{node.name}.{item.name}() overrides the zoo entry"
                        " point without accepting/forwarding timeout_rounds"
                        " (graceful default-output fallback)",
                    )


class EnvOutsideSeam(Rule):
    """ENV001 — ``REPRO_*`` environment reads outside the capture seam.

    Pool shards replay the coordinator's environment via
    ``repro.net.runtime.capture_runtime_env``; a ``REPRO_*`` read anywhere
    else is invisible to that seam, so a worker under ``spawn`` can
    resolve a different configuration than the run it is replaying.
    """

    id = "ENV001"
    severity = SEVERITY_ERROR
    title = "REPRO_* environment read outside the capture seam"
    rationale = "shards must be able to replay the coordinator's env"

    def _env_key(self, ctx: FileContext, call: ast.Call) -> Optional[ast.expr]:
        name = _call_name(ctx, call)
        if name in ("os.environ.get", "os.getenv") and call.args:
            return call.args[0]
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in ENV_SEAM_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            key: Optional[ast.expr] = None
            where: ast.AST = node
            if isinstance(node, ast.Call):
                key = self._env_key(ctx, node)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                if ctx.qualified(node.value) == "os.environ":
                    key = node.slice
                    where = node
            if key is None:
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value.startswith("REPRO_"):
                    yield self.finding(
                        ctx, where,
                        f"{key.value} read outside the runtime/parallel"
                        " capture seam — pool shards cannot replay it (see"
                        " repro.analysis.rules.ENV_SEAM_ALLOWLIST)",
                    )


class MetricNameSanitization(Rule):
    """OBS001 — metric/span names must survive the Prometheus round-trip.

    ``obs.export.sanitize_metric_name`` maps ``.`` to ``_`` and replaces
    anything outside ``[a-zA-Z0-9_:]``; a name that needs replacement (or
    starts with a digit, or has empty dotted segments) aliases with other
    names after flattening and breaks ``parse_prometheus_text`` checks.
    """

    id = "OBS001"
    severity = SEVERITY_ERROR
    title = "metric/span name fails Prometheus sanitization round-trip"
    rationale = "unsanitizable names alias after exposition flattening"

    def _check_literal(self, name: str) -> Optional[str]:
        if not _METRIC_NAME.fullmatch(name):
            return (
                f"name {name!r} must match [a-z][a-z0-9_]*(.[a-z0-9_]+)* to"
                " survive the Prometheus sanitization round-trip"
            )
        return None

    def _check_fstring(self, node: ast.JoinedStr) -> Optional[str]:
        for index, part in enumerate(node.values):
            if not isinstance(part, ast.Constant):
                continue
            text = str(part.value)
            fragment = _METRIC_FRAGMENT.fullmatch(text)
            if fragment is None or (index == 0 and not re.match(r"[a-z]", text)):
                return (
                    f"metric-name fragment {text!r} contains characters the"
                    " Prometheus exposition cannot round-trip"
                )
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            is_metric = func.attr in ("inc", "observe") and _is_metrics_receiver(
                func.value
            )
            is_span = func.attr in ("span", "event") and _is_tracer_receiver(func.value)
            if not (is_metric or is_span) or not call.args:
                continue
            name_arg = call.args[0]
            problem: Optional[str] = None
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                problem = self._check_literal(name_arg.value)
            elif isinstance(name_arg, ast.JoinedStr):
                problem = self._check_fstring(name_arg)
            if problem is not None:
                yield self.finding(ctx, call, problem)


class BuiltinHashOrder(Rule):
    """DET005 — builtin ``hash()`` of process-randomized types.

    ``str``/``bytes`` hashing is salted per interpreter (PYTHONHASHSEED),
    so any value or ordering derived from builtin ``hash()`` differs
    between the coordinator and spawned pool workers.  Use ``hashlib`` (as
    ``crypto.prg`` does) for anything that reaches transcripts or seeds.
    """

    id = "DET005"
    severity = SEVERITY_ERROR
    title = "builtin hash() is interpreter-salted"
    rationale = "PYTHONHASHSEED varies across processes; use hashlib"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # ``__hash__`` implementations delegating to ``hash(...)`` are the
        # protocol's intended idiom: those values never leave the process
        # (in-process dict/set identity only), so they are exempt.
        inside_dunder_hash: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "__hash__":
                inside_dunder_hash.update(
                    id(sub) for sub in ast.walk(node) if isinstance(sub, ast.Call)
                )
        for call in _walk_calls(ctx.tree):
            if id(call) in inside_dunder_hash:
                continue
            if isinstance(call.func, ast.Name) and call.func.id == "hash":
                if ctx.imports.get("hash") is None:
                    yield self.finding(
                        ctx, call,
                        "builtin hash() is salted per process"
                        " (PYTHONHASHSEED) — derive deterministic digests"
                        " via hashlib instead",
                    )


class ScenarioBypassesSchema(Rule):
    """SCN001 — direct ``Scenario(...)`` construction outside the DSL.

    The scenario DSL validates at its entry points — ``from_dict`` /
    ``build`` / ``loads`` / ``load`` — not in ``__post_init__``, so a
    direct dataclass call skips every cross-field schema check (protocol
    resilience bounds, adversary applicability, event-only network
    knobs).  Downstream consumers (campaign runner, corpus, shrinker, CI
    gates) all assume "a Scenario exists ⇒ it validated"; construction
    inside ``repro.scenario.*`` is the designed seam and stays exempt.
    """

    id = "SCN001"
    severity = SEVERITY_ERROR
    title = "Scenario constructed directly, bypassing schema validation"
    rationale = "scenario invariants hold only through the validated entry points"

    #: Resolved names of the dataclass (package re-export and home module).
    _TARGETS = ("repro.scenario.Scenario", "repro.scenario.spec.Scenario")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == "repro.scenario" or ctx.module.startswith("repro.scenario."):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(ctx, node) in self._TARGETS:
                yield self.finding(
                    ctx, node,
                    "Scenario(...) called directly; use Scenario.from_dict /"
                    " build / loads / load so the spec is schema-validated",
                )


class ModularPowOutsideCrypto(Rule):
    """CRY001 — modular exponentiation outside the crypto/fastpath seam.

    Three-argument ``pow(base, exp, mod)`` (and raw ``gmpy2.powmod``) is
    group arithmetic that bypasses :meth:`GroupElement.__pow__` and the
    backend seam: it skips exponent normalization, the ``crypto.group.exp``
    cost counter, the fixed-base table cache, *and* the configured backend
    — so a call site outside ``repro.crypto`` / ``repro.fastpath`` silently
    re-opens the per-callsite arithmetic the seam was built to close.
    Protocol and experiment code must go through ``GroupElement`` (or a
    fastpath kernel); non-group modular arithmetic opts out inline with a
    justified ``# repro: allow[CRY001]``.
    """

    id = "CRY001"
    severity = SEVERITY_ERROR
    title = "modular exponentiation bypasses the crypto backend seam"
    rationale = "pow(b, e, m) outside crypto/fastpath skips counters, tables, and the backend"

    _SEAM_PREFIXES = ("repro.crypto", "repro.fastpath")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in self._SEAM_PREFIXES
        ):
            return
        for call in _walk_calls(ctx.tree):
            name = _call_name(ctx, call)
            if name == "pow" and len(call.args) == 3 and ctx.imports.get("pow") is None:
                yield self.finding(
                    ctx, call,
                    "3-argument pow() is modular exponentiation — route it"
                    " through GroupElement.__pow__ / repro.fastpath so the"
                    " backend seam, tables, and cost counters apply",
                )
            elif name in ("gmpy2.powmod", "gmpy2.invert"):
                yield self.finding(
                    ctx, call,
                    f"raw {name}() outside the backend seam — only"
                    " repro.crypto.backend may touch gmpy2 directly",
                )


#: The battery, in catalog order.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomness(),
    WallClockRead(),
    UnorderedIteration(),
    TelemetryIntoMetrics(),
    BuiltinHashOrder(),
    FloatIntoCounter(),
    MessageSlots(),
    RunHonorsTimeout(),
    EnvOutsideSeam(),
    MetricNameSanitization(),
    ScenarioBypassesSchema(),
    ModularPowOutsideCrypto(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def rule_catalog() -> List[Dict[str, str]]:
    """Machine-readable catalog (the ``--list-rules`` payload)."""
    return [
        {
            "id": rule.id,
            "severity": rule.severity,
            "title": rule.title,
            "rationale": rule.rationale,
        }
        for rule in ALL_RULES
    ]


def resolve_rules(ids: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """The full battery, or the subset named by ``ids``."""
    if not ids:
        return ALL_RULES
    unknown = [rule_id for rule_id in ids if rule_id not in RULES_BY_ID]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(RULES_BY_ID[rule_id] for rule_id in ids)
