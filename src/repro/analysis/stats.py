"""Statistical machinery: confidence intervals and verdict thresholds.

Every independence estimator in :mod:`repro.core` reports a *gap* — an
empirical estimate of the quantity the paper requires to be negligible —
together with a Hoeffding confidence half-width.  The three-way decision
rule (:func:`decide`) is calibrated to the paper's separations, which are
all *constant-gap*: attacks force gaps ≥ 0.1 while secure protocols sit at
sampling noise, so the two thresholds never squeeze a real effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import ExperimentError

DEFAULT_CONFIDENCE = 0.95
DEFAULT_TAU_LOW = 0.12
DEFAULT_TAU_HIGH = 0.12


def hoeffding_halfwidth(samples: int, confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Two-sided Hoeffding bound half-width for a [0,1]-valued mean.

    P(|mean - estimate| >= eps) <= 2 exp(-2 n eps^2) = 1 - confidence.
    """
    if samples < 1:
        raise ExperimentError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError("confidence must be in (0, 1)")
    return math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * samples))


def selection_halfwidth(
    samples: int,
    comparisons: int,
    family_error: float = 0.05,
) -> float:
    """Hoeffding half-width corrected for selecting the max of many statistics.

    Certifying that a *selected* gap exceeds a threshold is a union bound
    over the ``comparisons`` candidate statistics, so the per-test
    confidence is Bonferroni-adjusted.  This is what keeps the VIOLATED
    verdict honest when an estimator maximises over predicates, parties or
    conditioning pairs.
    """
    if comparisons < 1:
        raise ExperimentError("comparisons must be positive")
    confidence = 1.0 - family_error / comparisons
    return hoeffding_halfwidth(samples, confidence)


@dataclass(frozen=True)
class BernoulliEstimate:
    """An estimated probability with its sample count and half-width."""

    successes: int
    samples: int
    confidence: float = DEFAULT_CONFIDENCE

    @property
    def estimate(self) -> float:
        return self.successes / self.samples

    @property
    def halfwidth(self) -> float:
        return hoeffding_halfwidth(self.samples, self.confidence)

    @property
    def lower(self) -> float:
        return max(0.0, self.estimate - self.halfwidth)

    @property
    def upper(self) -> float:
        return min(1.0, self.estimate + self.halfwidth)


class Decision(Enum):
    """Outcome of testing whether a gap is "negligible"."""

    CONSISTENT = "consistent-with-negligible"
    VIOLATED = "non-negligible"
    INCONCLUSIVE = "inconclusive"


def decide(
    gap: float,
    error: float,
    tau_low: float = DEFAULT_TAU_LOW,
    tau_high: float = DEFAULT_TAU_HIGH,
) -> Decision:
    """Three-way decision on an estimated gap.

    * ``VIOLATED``   — even the pessimistic gap exceeds ``tau_high``: a
      robust non-negligibility certificate (all attacks in the paper force
      gaps ≥ 0.25, far above the default threshold);
    * ``CONSISTENT`` — the point estimate sits below ``tau_low``.  This is
      deliberately one-sided: "consistent with negligible at this sample
      size", never a proof of negligibility (which no finite experiment
      can give);
    * ``INCONCLUSIVE`` — the estimate is large but within its error bar of
      the threshold (more samples needed).
    """
    if gap < 0 or error < 0:
        raise ExperimentError("gap and error must be non-negative")
    if gap - error > tau_high:
        return Decision.VIOLATED
    if gap < tau_low:
        return Decision.CONSISTENT
    return Decision.INCONCLUSIVE


def empirical_tv(counts_a: dict, total_a: int, counts_b: dict, total_b: int) -> float:
    """TV distance between two empirical distributions given as count maps."""
    if total_a < 1 or total_b < 1:
        raise ExperimentError("both samples must be non-empty")
    support = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a.get(v, 0) / total_a - counts_b.get(v, 0) / total_b)
        for v in support
    )
