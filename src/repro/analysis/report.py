"""Analysis reports and the grandfathered-findings baseline.

The JSON report (``results/ANALYSIS.json``) is itself an artifact and so
obeys the discipline it polices: no timestamps, no environment detail —
two runs over the same tree produce byte-identical reports.

The baseline file stores finding *keys* (path::rule::message, no line
numbers) with multiplicities, so grandfathered findings survive unrelated
edits above them but a **new** instance of an old offence still gates.
The ratchet direction is shrink-only: ``--update-baseline`` is for
removing entries as they are fixed (CI pins the checked-in copy).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Finding
from .rules import rule_catalog

BASELINE_VERSION = 1
REPORT_VERSION = 1

#: Where the checked-in grandfather list and the emitted report live,
#: relative to the invocation directory (the repo root in CI).
DEFAULT_BASELINE_PATH = os.path.join("results", "ANALYSIS_baseline.json")
DEFAULT_REPORT_PATH = os.path.join("results", "ANALYSIS.json")


@dataclass(slots=True)
class AnalysisReport:
    """The outcome of one analyzer run, ready to render or serialize."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    stale_baseline_keys: List[str] = field(default_factory=list)

    @property
    def gating(self) -> List[Finding]:
        """The findings that fail the gate (i.e., not grandfathered)."""
        return self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Counter[str] = Counter(f.rule for f in self.findings)
        return dict(sorted(counts.items()))

    def to_json(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "files_scanned": self.files_scanned,
            "rules": rule_catalog(),
            "summary": {
                "gating": len(self.findings),
                "baselined": len(self.baselined),
                "by_rule": self.counts_by_rule(),
                "stale_baseline_keys": sorted(self.stale_baseline_keys),
            },
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        summary = (
            f"{len(self.findings)} gating finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{self.files_scanned} file(s) scanned"
        )
        if self.stale_baseline_keys:
            summary += f", {len(self.stale_baseline_keys)} stale baseline entrie(s)"
        lines.append(summary)
        return "\n".join(lines)


def load_baseline(path: str) -> Counter:
    """The grandfathered finding keys with multiplicities; {} if absent."""
    if not os.path.exists(path):
        return Counter()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", {})
    counter: Counter = Counter()
    for key, count in entries.items():
        counter[str(key)] = int(count)
    return counter


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Record the given findings as the new grandfather list."""
    entries: Counter = Counter(f.key() for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "policy": (
            "shrink-only: entries are removed as findings are fixed; new"
            " findings must be fixed or suppressed inline, never added here"
        ),
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (gating, baselined) and report stale keys.

    Each baseline entry absorbs up to its recorded multiplicity of
    matching findings; the (count+1)-th occurrence gates.  Keys left with
    budget after the sweep are *stale* — the finding was fixed and the
    entry should be deleted (the shrink ratchet).
    """
    remaining = Counter(baseline)
    gating: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            gating.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return gating, baselined, stale


def build_report(
    findings: Sequence[Finding],
    files_scanned: int,
    baseline: Optional[Counter] = None,
) -> AnalysisReport:
    ordered = list(findings)
    if baseline:
        gating, baselined, stale = apply_baseline(ordered, baseline)
    else:
        gating, baselined, stale = ordered, [], []
    return AnalysisReport(
        findings=gating,
        baselined=baselined,
        files_scanned=files_scanned,
        stale_baseline_keys=stale,
    )


def write_report(report: AnalysisReport, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2)
        handle.write("\n")
