"""``python -m repro analyze`` — the static-analysis entry point.

Exit status: 0 when the tree is clean modulo the baseline (and the
baseline has no stale entries), 1 when any finding gates, 2 on usage
errors.  Always writes the JSON report (``results/ANALYSIS.json`` by
default) so CI can upload it as an artifact regardless of outcome.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .engine import analyze_files, iter_python_files
from .report import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_REPORT_PATH,
    build_report,
    load_baseline,
    write_baseline,
    write_report,
)
from .rules import ALL_RULES, resolve_rules, rule_catalog


def _default_target() -> str:
    """The installed ``repro`` package directory (works from any cwd)."""
    from .. import __file__ as package_init

    return os.path.dirname(os.path.abspath(package_init))


def _default_root(target: str) -> str:
    """Anchor for stable relative paths: the directory holding ``repro/``."""
    return os.path.dirname(os.path.abspath(target))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "determinism & protocol-discipline static analyzer; gates on"
            " zero non-baselined findings"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (the JSON report file is written either way)",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE_PATH,
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: every finding gates",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=DEFAULT_REPORT_PATH,
        help=f"JSON report path (default: {DEFAULT_REPORT_PATH}; '-' disables)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in ALL_RULES)
        for entry in rule_catalog():
            print(
                f"{entry['id'].ljust(width)}  [{entry['severity']}]"
                f" {entry['title']} — {entry['rationale']}"
            )
        return 0

    try:
        rules = resolve_rules(
            [part.strip() for part in args.rules.split(",") if part.strip()]
            if args.rules
            else None
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    if args.paths:
        targets = [os.path.abspath(path) for path in args.paths]
        root = os.getcwd()
    else:
        target = _default_target()
        targets = [target]
        root = _default_root(target)

    files = iter_python_files(targets)
    if not files:
        parser.error(f"no python files under: {', '.join(targets)}")
    findings, scanned = analyze_files(files, rules, root=root)

    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(
            f"baseline updated: {len(findings)} finding(s) ->"
            f" {args.baseline}"
        )
        return 0

    baseline = None if args.no_baseline else load_baseline(args.baseline)
    report = build_report(findings, scanned, baseline)

    if args.out != "-":
        write_report(report, args.out)

    if args.format == "json":
        import json

        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())

    if report.findings or report.stale_baseline_keys:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
