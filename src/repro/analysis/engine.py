"""AST rule engine for the determinism & protocol-discipline analyzer.

Every guarantee the reproduction makes — bit-identical serial vs
``--jobs N`` artifacts, replayable fault/runtime schedules, the
rushing-adversary degeneracy proofs — rests on coding invariants (seeded
RNG streams only, no wall-clock in artifact paths, no set-iteration
order leaking into transcripts) that CI replay jobs only catch
*dynamically*, late, and with poor shrinking.  This engine makes the
discipline a static property: each :class:`Rule` inspects one parsed
module and yields :class:`Finding` objects; the CLI
(:mod:`repro.analysis.cli`) gates CI on zero non-baselined findings.

Escape hatches, in order of preference:

* **module allowlists** — designed seams (the obs timing clock, the
  runtime env-capture seam) are enumerated per rule in
  :mod:`repro.analysis.rules` with a documented justification;
* **inline suppressions** — ``# repro: allow[RULE001]`` on the flagged
  line silences that rule there (comma-separate to allow several);
* **the baseline file** — grandfathered findings recorded by
  ``repro analyze --update-baseline`` (see :mod:`repro.analysis.report`);
  the ratchet direction is shrink-only.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# repro: allow[DET001]`` / ``# repro: allow[DET001,ENV001]``.
_ALLOW_COMMENT = re.compile(r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9_,\s]+)\]")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def key(self) -> str:
        """Baseline identity: line-insensitive so unrelated edits above a
        grandfathered finding do not invalidate the baseline entry."""
        return f"{self.path}::{self.rule}::{self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """Everything a rule may need about the module under analysis."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        self.allowed_lines: Dict[int, Set[str]] = _parse_suppressions(source)
        self._imports: Optional[Dict[str, str]] = None

    # -- suppressions ------------------------------------------------------------

    def is_allowed(self, rule_id: str, line: int) -> bool:
        allowed = self.allowed_lines.get(line)
        return allowed is not None and (rule_id in allowed or "*" in allowed)

    # -- import resolution -------------------------------------------------------

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> fully qualified module/object it was imported as."""
        if self._imports is None:
            self._imports = _collect_imports(self.tree, self.module)
        return self._imports

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through this module's imports.

        ``random.Random`` -> ``"random.Random"``; with ``import numpy as
        np``, ``np.random.seed`` -> ``"numpy.random.seed"``; with ``from
        os import urandom``, ``urandom`` -> ``"os.urandom"``.  Returns
        ``None`` for expressions that are not a dotted-name chain.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        resolved = self.imports.get(root)
        if resolved is not None:
            return ".".join([resolved] + parts[1:])
        return ".".join(parts)


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = "RULE000"
    severity: str = SEVERITY_ERROR
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
        )


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids allowed by an inline comment."""
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_COMMENT.search(token.string)
            if match is None:
                continue
            rule_ids = {part.strip() for part in match.group("rules").split(",")}
            rule_ids.discard("")
            allowed.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenError:
        pass
    return allowed


def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local binding -> fully qualified origin, relative imports resolved."""
    imports: Dict[str, str] = {}
    package_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # ``from ..obs import runtime``: climb level-1 packages up.
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


# -- file discovery and driving ------------------------------------------------------


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path`` relative to the scan root's parent."""
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    if rel.endswith(".py"):
        rel = rel[: -len(".py")]
    parts = [part for part in rel.split("/") if part not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.add(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.add(os.path.abspath(os.path.join(dirpath, filename)))
    return sorted(found)


def analyze_source(
    source: str,
    rules: Sequence[Rule],
    path: str = "<memory>",
    module: str = "",
) -> List[Finding]:
    """Run rules over one source string (the test-fixture entry point)."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, module=module, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_allowed(finding.rule, finding.line):
                findings.append(finding)
    return findings


def analyze_files(
    files: Iterable[str],
    rules: Sequence[Rule],
    root: str,
) -> Tuple[List[Finding], int]:
    """Analyze files, returning (findings sorted by location, files scanned).

    ``root`` anchors the stable relative paths used in finding keys; scan
    ``src/repro`` with ``root=src`` and keys read ``repro/net/runtime.py``
    no matter where the analyzer was invoked from.
    """
    findings: List[Finding] = []
    scanned = 0
    for filename in files:
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        rel = os.path.relpath(os.path.abspath(filename), os.path.abspath(root))
        rel = rel.replace(os.sep, "/")
        module = module_name_for(filename, root)
        findings.extend(
            analyze_source(source, rules, path=rel, module=module)
        )
        scanned += 1
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, scanned
