"""Statistics, negligibility trends, and table rendering for the harness."""

from .stats import (
    DEFAULT_CONFIDENCE,
    DEFAULT_TAU_HIGH,
    DEFAULT_TAU_LOW,
    BernoulliEstimate,
    Decision,
    decide,
    empirical_tv,
    hoeffding_halfwidth,
)
from .tables import render_cost_report, render_figure1, render_table
from .trend import TrendVerdict, assess_trend

__all__ = [
    "DEFAULT_CONFIDENCE",
    "DEFAULT_TAU_HIGH",
    "DEFAULT_TAU_LOW",
    "BernoulliEstimate",
    "Decision",
    "decide",
    "empirical_tv",
    "hoeffding_halfwidth",
    "render_table",
    "render_cost_report",
    "render_figure1",
    "TrendVerdict",
    "assess_trend",
]
